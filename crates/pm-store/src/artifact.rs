//! The `pm-store/1` artifact: one complete mining run, serialized.
//!
//! # Layout
//!
//! ```text
//! magic     8 bytes  b"pm-store"
//! version   u32 LE   1
//! sections  u32 LE   number of sections that follow
//! then per section:
//!   tag       4 ASCII bytes
//!   length    u64 LE  payload bytes
//!   crc32     u32 LE  IEEE CRC-32 of the payload
//!   payload   `length` bytes
//! ```
//!
//! All integers are little-endian; `f64` values are stored as IEEE-754 bit
//! patterns, so NaN payloads and signed zeros round-trip bit for bit. The
//! writer is deterministic — same artifact, same bytes — which is what makes
//! the `load → re-serialize → byte-identical` CI check meaningful.
//!
//! ## Sections (version 1)
//!
//! | tag    | content                                                   |
//! |--------|-----------------------------------------------------------|
//! | `PARM` | the [`MinerParams`] the run was mined with                |
//! | `PROJ` | optional WGS-84 projection origin (lon, lat)              |
//! | `GRID` | grid-index geometry: requested + effective cell size      |
//! | `POIS` | the retained POI database                                 |
//! | `POPS` | Eq. 3 popularity per POI                                  |
//! | `UNIT` | the semantic units (members, tags, center, distribution)  |
//! | `STAT` | CSD construction statistics                               |
//! | `DEGR` | degradations tolerated during the run                     |
//! | `PATS` | the mined fine-grained pattern set                        |
//! | `motf` | *optional* — the daily mobility-motif table ([`MotifTable`]) |
//! | `coho` | *optional* — the per-user cohort index ([`CohortTable`])  |
//!
//! ## Forward compatibility
//!
//! Tags whose first byte is an ASCII **uppercase** letter are *critical*: a
//! reader that does not know them must reject the artifact
//! ([`StoreError::UnknownSection`]). Tags starting with a **lowercase**
//! letter are *optional*: readers verify their CRC and skip them. New
//! writers extend the format by appending optional sections; incompatible
//! layout changes bump the format version instead.

use crate::bytes::{ByteReader, ByteWriter};
use crate::crc::crc32;
use crate::error::StoreError;
use pm_cohort::{Cohort, CohortTable, UserRecord};
use pm_core::construct::{BuildStats, CitySemanticDiagram, SemanticUnit};
use pm_core::error::Degradation;
use pm_core::extract::FinePattern;
use pm_core::params::MinerParams;
use pm_core::types::{Category, Poi, StayPoint, Tags};
use pm_geo::{GeoPoint, LocalPoint};
use pm_motif::MotifTable;
use std::path::Path;

/// File magic: the first eight bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"pm-store";
/// Format version this module writes and reads.
pub const VERSION: u32 = 1;

const TAG_PARM: [u8; 4] = *b"PARM";
const TAG_PROJ: [u8; 4] = *b"PROJ";
const TAG_GRID: [u8; 4] = *b"GRID";
const TAG_POIS: [u8; 4] = *b"POIS";
const TAG_POPS: [u8; 4] = *b"POPS";
const TAG_UNIT: [u8; 4] = *b"UNIT";
const TAG_STAT: [u8; 4] = *b"STAT";
const TAG_DEGR: [u8; 4] = *b"DEGR";
const TAG_PATS: [u8; 4] = *b"PATS";
/// Lowercase first byte: optional — readers that predate motifs verify the
/// CRC and skip the payload (the forward-compat path proven in tests).
const TAG_MOTF: [u8; 4] = *b"motf";
/// Lowercase first byte: optional — the per-user cohort index is skipped by
/// readers that predate it, exactly like `motf`.
const TAG_COHO: [u8; 4] = *b"coho";

/// A complete, self-describing mining run: everything the online query
/// service needs to answer semantic lookups, annotate trajectories, and
/// filter patterns without re-running the pipeline.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The parameters the run was mined with (the annotate endpoint reuses
    /// the stay-point detection and recognition thresholds).
    pub params: MinerParams,
    /// WGS-84 origin of the local meter frame, when the run was mined from
    /// geographic data. `None` for purely synthetic local-frame runs.
    pub projection: Option<GeoPoint>,
    /// The City Semantic Diagram of the run.
    pub csd: CitySemanticDiagram,
    /// The mined fine-grained pattern set, in the miner's output order.
    pub patterns: Vec<FinePattern>,
    /// The daily mobility-motif table, when the `motifs` command computed
    /// one. Persisted as the optional `motf` section: readers that predate
    /// it skip the section instead of rejecting the artifact.
    pub motifs: Option<MotifTable>,
    /// The per-user cohort index, when the `cohorts` command mined one.
    /// Persisted as the optional `coho` section under the same
    /// forward-compatibility contract as `motf`.
    pub cohorts: Option<CohortTable>,
}

impl Artifact {
    /// Bundles a mining run into an artifact (no projection).
    pub fn new(csd: CitySemanticDiagram, patterns: Vec<FinePattern>, params: MinerParams) -> Self {
        Artifact {
            params,
            projection: None,
            csd,
            patterns,
            motifs: None,
            cohorts: None,
        }
    }

    /// Attaches the WGS-84 projection origin the run's coordinates are
    /// anchored to, enabling `lat`/`lon` queries against the artifact.
    #[must_use]
    pub fn with_projection(mut self, origin: GeoPoint) -> Self {
        self.projection = Some(origin);
        self
    }

    /// Attaches a mobility-motif table, persisted as the optional `motf`
    /// section.
    #[must_use]
    pub fn with_motifs(mut self, motifs: MotifTable) -> Self {
        self.motifs = Some(motifs);
        self
    }

    /// Attaches a per-user cohort index, persisted as the optional `coho`
    /// section.
    #[must_use]
    pub fn with_cohorts(mut self, cohorts: CohortTable) -> Self {
        self.cohorts = Some(cohorts);
        self
    }

    /// One-line human-readable summary (for CLI logging).
    pub fn describe(&self) -> String {
        format!(
            "{} POIs, {} units, {} patterns{}{}{}",
            self.csd.pois().len(),
            self.csd.units().len(),
            self.patterns.len(),
            if self.projection.is_some() {
                ", geo-anchored"
            } else {
                ""
            },
            match &self.motifs {
                Some(t) => format!(", {} motif classes", t.classes.len()),
                None => String::new(),
            },
            match &self.cohorts {
                Some(t) => format!(", {} cohorts over {} users", t.cohorts.len(), t.users.len()),
                None => String::new(),
            }
        )
    }

    /// Serializes to the `pm-store/1` byte layout. Deterministic: the same
    /// artifact always produces the same bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = ByteWriter::new();
        out.bytes(&MAGIC);
        out.u32(VERSION);

        let mut sections: Vec<([u8; 4], ByteWriter)> = Vec::new();
        sections.push((TAG_PARM, write_params(&self.params)));
        if let Some(origin) = self.projection {
            let mut w = ByteWriter::new();
            w.f64(origin.lon);
            w.f64(origin.lat);
            sections.push((TAG_PROJ, w));
        }
        let mut grid = ByteWriter::new();
        grid.f64(self.csd.grid_cell_size());
        grid.f64(self.csd.grid_cell_size_effective());
        sections.push((TAG_GRID, grid));
        sections.push((TAG_POIS, write_pois(self.csd.pois())));
        let mut pops = ByteWriter::new();
        pops.count(self.csd.popularities().len());
        for &p in self.csd.popularities() {
            pops.f64(p);
        }
        sections.push((TAG_POPS, pops));
        sections.push((TAG_UNIT, write_units(self.csd.units())));
        sections.push((TAG_STAT, write_stats(self.csd.stats())));
        sections.push((TAG_DEGR, write_degradations(self.csd.degradations())));
        sections.push((TAG_PATS, write_patterns(&self.patterns)));
        if let Some(motifs) = &self.motifs {
            sections.push((TAG_MOTF, write_motifs(motifs)));
        }
        if let Some(cohorts) = &self.cohorts {
            sections.push((TAG_COHO, write_cohorts(cohorts)));
        }

        out.u32(sections.len() as u32);
        for (tag, payload) in sections {
            let payload = payload.into_bytes();
            out.bytes(&tag);
            out.u64(payload.len() as u64);
            out.u32(crc32(&payload));
            out.bytes(&payload);
        }
        out.into_bytes()
    }

    /// Strict reader for the `pm-store/1` layout: corrupt, truncated, or
    /// wrong-version input returns a typed [`StoreError`]; this function
    /// never panics on any byte string.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, StoreError> {
        let mut r = ByteReader::new(bytes);
        if r.bytes(MAGIC.len(), "magic")? != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.u32("format version")?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let n_sections = r.u32("section count")? as usize;
        // A section frame is at least tag + length + crc = 16 bytes.
        if n_sections > r.remaining() / 16 {
            return Err(StoreError::malformed(format!(
                "section count {n_sections} exceeds what {} remaining byte(s) can hold",
                r.remaining()
            )));
        }

        let mut parm: Option<MinerParams> = None;
        let mut proj: Option<GeoPoint> = None;
        let mut grid: Option<(f64, f64)> = None;
        let mut pois: Option<Vec<Poi>> = None;
        let mut pops: Option<Vec<f64>> = None;
        let mut units: Option<Vec<SemanticUnit>> = None;
        let mut stats: Option<BuildStats> = None;
        let mut degr: Option<Vec<Degradation>> = None;
        let mut pats: Option<Vec<FinePattern>> = None;
        let mut motifs: Option<MotifTable> = None;
        let mut cohorts: Option<CohortTable> = None;

        let mut seen: Vec<[u8; 4]> = Vec::new();
        for _ in 0..n_sections {
            let tag_bytes = r.bytes(4, "section tag")?;
            let tag = [tag_bytes[0], tag_bytes[1], tag_bytes[2], tag_bytes[3]];
            let len = r.u64("section length")?;
            if len > r.remaining().saturating_sub(4) as u64 {
                return Err(StoreError::truncated(format!(
                    "section {} payload",
                    String::from_utf8_lossy(&tag)
                )));
            }
            let stored_crc = r.u32("section crc")?;
            let payload = r.bytes(len as usize, "section payload")?;
            if crc32(payload) != stored_crc {
                return Err(StoreError::ChecksumMismatch { section: tag });
            }
            if seen.contains(&tag) {
                return Err(StoreError::DuplicateSection { section: tag });
            }
            seen.push(tag);
            let p = ByteReader::new(payload);
            match tag {
                TAG_PARM => parm = Some(read_params(p)?),
                TAG_PROJ => {
                    let mut p = p;
                    let lon = p.f64("projection lon")?;
                    let lat = p.f64("projection lat")?;
                    p.finish("PROJ")?;
                    proj = Some(GeoPoint::new(lon, lat));
                }
                TAG_GRID => {
                    let mut p = p;
                    let requested = p.f64("grid requested cell size")?;
                    let effective = p.f64("grid effective cell size")?;
                    p.finish("GRID")?;
                    grid = Some((requested, effective));
                }
                TAG_POIS => pois = Some(read_pois(p)?),
                TAG_POPS => {
                    let mut p = p;
                    let n = p.count(8, "popularity count")?;
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(p.f64("popularity value")?);
                    }
                    p.finish("POPS")?;
                    pops = Some(v);
                }
                TAG_UNIT => units = Some(read_units(p)?),
                TAG_STAT => stats = Some(read_stats(p)?),
                TAG_DEGR => degr = Some(read_degradations(p)?),
                TAG_PATS => pats = Some(read_patterns(p)?),
                TAG_MOTF => motifs = Some(read_motifs(p)?),
                TAG_COHO => cohorts = Some(read_cohorts(p)?),
                unknown if unknown[0].is_ascii_lowercase() => {
                    // Optional section from a newer writer: CRC verified
                    // above, content skipped.
                }
                unknown => return Err(StoreError::UnknownSection { section: unknown }),
            }
        }
        if !r.is_exhausted() {
            return Err(StoreError::TrailingBytes {
                count: r.remaining(),
            });
        }

        let missing = |s: &'static str| StoreError::MissingSection { section: s };
        let params = parm.ok_or_else(|| missing("PARM"))?;
        let (cell_requested, cell_effective) = grid.ok_or_else(|| missing("GRID"))?;
        let pois = pois.ok_or_else(|| missing("POIS"))?;
        let pops = pops.ok_or_else(|| missing("POPS"))?;
        let units = units.ok_or_else(|| missing("UNIT"))?;
        let stats = stats.ok_or_else(|| missing("STAT"))?;
        let degradations = degr.ok_or_else(|| missing("DEGR"))?;
        let patterns = pats.ok_or_else(|| missing("PATS"))?;

        let csd =
            CitySemanticDiagram::from_parts(pois, pops, units, stats, degradations, cell_requested)
                .map_err(|e| StoreError::malformed(format!("CSD reassembly failed: {e}")))?;
        // The spatial index is rebuilt deterministically; its effective cell
        // size is an end-to-end integrity probe over POIS + GRID together.
        if csd.grid_cell_size_effective().to_bits() != cell_effective.to_bits() {
            return Err(StoreError::malformed(format!(
                "rebuilt grid cell size {} does not match stored {}",
                csd.grid_cell_size_effective(),
                cell_effective
            )));
        }

        Ok(Artifact {
            params,
            projection: proj,
            csd,
            patterns,
            motifs,
            cohorts,
        })
    }

    /// Writes the artifact to a file.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads an artifact from a file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Artifact, StoreError> {
        let bytes = std::fs::read(path)?;
        Artifact::from_bytes(&bytes)
    }

    /// [`Artifact::from_bytes`] plus the same byte-identity round-trip the
    /// CI `artifact-check` runs: the decoded artifact must re-serialize to
    /// exactly the input bytes. Catches "decodes, but lossy" corruption
    /// (e.g. an optional section a plain read would silently skip) before
    /// the artifact is trusted — the gate `/v1/reload` applies before
    /// swapping a snapshot in.
    pub fn from_bytes_verified(bytes: &[u8]) -> Result<Artifact, StoreError> {
        let artifact = Artifact::from_bytes(bytes)?;
        if artifact.to_bytes() != bytes {
            return Err(StoreError::malformed(
                "artifact does not round-trip byte-identically",
            ));
        }
        Ok(artifact)
    }

    /// Reads and round-trip-verifies an artifact file
    /// (see [`Artifact::from_bytes_verified`]).
    pub fn read_file_verified(path: impl AsRef<Path>) -> Result<Artifact, StoreError> {
        let bytes = std::fs::read(path)?;
        Artifact::from_bytes_verified(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------------

fn tags_to_bits(tags: Tags) -> u16 {
    tags.iter().fold(0u16, |m, c| m | (1 << c as u8))
}

fn tags_from_bits(bits: u16, context: &str) -> Result<Tags, StoreError> {
    if bits >= 1 << Category::COUNT {
        return Err(StoreError::malformed(format!(
            "{context}: tag bits {bits:#06x} set categories beyond {}",
            Category::COUNT
        )));
    }
    Ok(Category::ALL
        .into_iter()
        .filter(|&c| bits & (1 << c as u8) != 0)
        .collect())
}

fn read_category(r: &mut ByteReader<'_>, context: &str) -> Result<Category, StoreError> {
    let raw = r.u8(context)?;
    if (raw as usize) < Category::COUNT {
        Ok(Category::from_index(raw as usize))
    } else {
        Err(StoreError::malformed(format!(
            "{context}: category index {raw} out of range"
        )))
    }
}

fn write_params(p: &MinerParams) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.f64(p.r3sigma);
    w.count(p.min_pts);
    w.f64(p.eps_p);
    w.f64(p.d_v);
    w.f64(p.alpha);
    w.f64(p.v_min);
    w.count(p.n_min);
    w.f64(p.merge_cos);
    w.f64(p.merge_dist);
    w.i64(p.theta_t);
    w.f64(p.theta_d);
    w.count(p.sigma);
    w.i64(p.delta_t);
    w.f64(p.rho);
    w.count(p.min_pattern_len);
    w.count(p.max_pattern_len);
    w.count(p.threads);
    w
}

fn read_params(mut r: ByteReader<'_>) -> Result<MinerParams, StoreError> {
    let params = MinerParams {
        r3sigma: r.f64("params.r3sigma")?,
        min_pts: r.u64("params.min_pts")? as usize,
        eps_p: r.f64("params.eps_p")?,
        d_v: r.f64("params.d_v")?,
        alpha: r.f64("params.alpha")?,
        v_min: r.f64("params.v_min")?,
        n_min: r.u64("params.n_min")? as usize,
        merge_cos: r.f64("params.merge_cos")?,
        merge_dist: r.f64("params.merge_dist")?,
        theta_t: r.i64("params.theta_t")?,
        theta_d: r.f64("params.theta_d")?,
        sigma: r.u64("params.sigma")? as usize,
        delta_t: r.i64("params.delta_t")?,
        rho: r.f64("params.rho")?,
        min_pattern_len: r.u64("params.min_pattern_len")? as usize,
        max_pattern_len: r.u64("params.max_pattern_len")? as usize,
        threads: r.u64("params.threads")? as usize,
    };
    r.finish("PARM")?;
    Ok(params)
}

fn write_pois(pois: &[Poi]) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.count(pois.len());
    for p in pois {
        w.u64(p.id);
        w.f64(p.pos.x);
        w.f64(p.pos.y);
        w.u8(p.category as u8);
        w.u8(p.minor);
    }
    w
}

fn read_pois(mut r: ByteReader<'_>) -> Result<Vec<Poi>, StoreError> {
    let n = r.count(26, "POI count")?;
    let mut pois = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u64("POI id")?;
        let x = r.f64("POI x")?;
        let y = r.f64("POI y")?;
        let category = read_category(&mut r, "POI category")?;
        let minor = r.u8("POI minor")?;
        pois.push(Poi {
            id,
            pos: LocalPoint::new(x, y),
            category,
            minor,
        });
    }
    r.finish("POIS")?;
    Ok(pois)
}

fn write_units(units: &[SemanticUnit]) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.count(units.len());
    for u in units {
        w.count(u.members.len());
        for &m in &u.members {
            w.u64(m as u64);
        }
        w.u16(tags_to_bits(u.tags));
        w.f64(u.center.x);
        w.f64(u.center.y);
        for &d in &u.distribution {
            w.f64(d);
        }
    }
    w
}

fn read_units(mut r: ByteReader<'_>) -> Result<Vec<SemanticUnit>, StoreError> {
    // Minimal unit: empty member list (8) + tags (2) + center (16) +
    // distribution (15 * 8).
    let n = r.count(8 + 2 + 16 + Category::COUNT * 8, "unit count")?;
    let mut units = Vec::with_capacity(n);
    for _ in 0..n {
        let n_members = r.count(8, "unit member count")?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(r.u64("unit member")? as usize);
        }
        let tags = tags_from_bits(r.u16("unit tags")?, "unit tags")?;
        let center = LocalPoint::new(r.f64("unit center x")?, r.f64("unit center y")?);
        let mut distribution = [0.0; Category::COUNT];
        for d in &mut distribution {
            *d = r.f64("unit distribution")?;
        }
        units.push(SemanticUnit {
            members,
            tags,
            center,
            distribution,
        });
    }
    r.finish("UNIT")?;
    Ok(units)
}

fn write_stats(s: BuildStats) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.count(s.n_pois);
    w.count(s.n_coarse);
    w.count(s.n_leftover);
    w.count(s.n_purified);
    w.count(s.n_units);
    w.count(s.n_covered);
    w.f64(s.purity);
    w
}

fn read_stats(mut r: ByteReader<'_>) -> Result<BuildStats, StoreError> {
    let stats = BuildStats {
        n_pois: r.u64("stats.n_pois")? as usize,
        n_coarse: r.u64("stats.n_coarse")? as usize,
        n_leftover: r.u64("stats.n_leftover")? as usize,
        n_purified: r.u64("stats.n_purified")? as usize,
        n_units: r.u64("stats.n_units")? as usize,
        n_covered: r.u64("stats.n_covered")? as usize,
        purity: r.f64("stats.purity")?,
    };
    r.finish("STAT")?;
    Ok(stats)
}

fn write_degradations(events: &[Degradation]) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.count(events.len());
    for e in events {
        let kind = match e {
            Degradation::UnsplitCluster { .. } => 0u8,
            Degradation::NonFinitePois { .. } => 1,
            Degradation::NonFiniteStayLocations { .. } => 2,
            Degradation::UntaggedNonFiniteStays { .. } => 3,
            Degradation::DroppedGpsFixes { .. } => 4,
            Degradation::SkippedExtractionStays { .. } => 5,
        };
        w.u8(kind);
        w.count(e.count());
    }
    w
}

fn read_degradations(mut r: ByteReader<'_>) -> Result<Vec<Degradation>, StoreError> {
    let n = r.count(9, "degradation count")?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = r.u8("degradation kind")?;
        let count = r.u64("degradation value")? as usize;
        events.push(match kind {
            0 => Degradation::UnsplitCluster { members: count },
            1 => Degradation::NonFinitePois { dropped: count },
            2 => Degradation::NonFiniteStayLocations { dropped: count },
            3 => Degradation::UntaggedNonFiniteStays { count },
            4 => Degradation::DroppedGpsFixes { count },
            5 => Degradation::SkippedExtractionStays { count },
            other => {
                return Err(StoreError::malformed(format!(
                    "degradation kind {other} out of range"
                )))
            }
        });
    }
    r.finish("DEGR")?;
    Ok(events)
}

fn write_stay(w: &mut ByteWriter, sp: &StayPoint) {
    w.f64(sp.pos.x);
    w.f64(sp.pos.y);
    w.i64(sp.time);
    w.u16(tags_to_bits(sp.tags));
    w.u8(sp.primary.map_or(0xFF, |c| c as u8));
}

fn read_stay(r: &mut ByteReader<'_>) -> Result<StayPoint, StoreError> {
    let x = r.f64("stay x")?;
    let y = r.f64("stay y")?;
    let time = r.i64("stay time")?;
    let tags = tags_from_bits(r.u16("stay tags")?, "stay tags")?;
    let primary = match r.u8("stay primary")? {
        0xFF => None,
        raw if (raw as usize) < Category::COUNT => Some(Category::from_index(raw as usize)),
        raw => {
            return Err(StoreError::malformed(format!(
                "stay primary category {raw} out of range"
            )))
        }
    };
    Ok(StayPoint {
        pos: LocalPoint::new(x, y),
        time,
        tags,
        primary,
    })
}

/// Bytes of one serialized stay point.
const STAY_BYTES: usize = 8 + 8 + 8 + 2 + 1;

fn write_patterns(patterns: &[FinePattern]) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.count(patterns.len());
    for p in patterns {
        w.count(p.categories.len());
        for &c in &p.categories {
            w.u8(c as u8);
        }
        for sp in &p.stays {
            write_stay(&mut w, sp);
        }
        w.count(p.members.len());
        for &m in &p.members {
            w.u64(m as u64);
        }
        for group in &p.groups {
            w.count(group.len());
            for sp in group {
                write_stay(&mut w, sp);
            }
        }
    }
    w
}

fn read_patterns(mut r: ByteReader<'_>) -> Result<Vec<FinePattern>, StoreError> {
    // Minimal pattern: zero-length category list (8) + member count (8).
    let n = r.count(16, "pattern count")?;
    let mut patterns = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.count(1, "pattern length")?;
        if len == 0 {
            return Err(StoreError::malformed(
                "pattern with zero positions (the miner never emits these)",
            ));
        }
        let mut categories = Vec::with_capacity(len);
        for _ in 0..len {
            categories.push(read_category(&mut r, "pattern category")?);
        }
        let mut stays = Vec::with_capacity(len);
        for _ in 0..len {
            stays.push(read_stay(&mut r)?);
        }
        let n_members = r.count(8, "pattern member count")?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(r.u64("pattern member")? as usize);
        }
        let mut groups = Vec::with_capacity(len);
        for _ in 0..len {
            let n_group = r.count(STAY_BYTES, "pattern group size")?;
            let mut group = Vec::with_capacity(n_group);
            for _ in 0..n_group {
                group.push(read_stay(&mut r)?);
            }
            groups.push(group);
        }
        patterns.push(FinePattern {
            categories,
            stays,
            members,
            groups,
        });
    }
    r.finish("PATS")?;
    Ok(patterns)
}

/// Bytes of one serialized motif class: form + days + per-category node
/// counts + untagged nodes.
const MOTIF_CLASS_BYTES: usize = 8 + 8 + Category::COUNT * 8 + 8;

fn write_motifs(table: &MotifTable) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.u64(table.total_days);
    w.u64(table.oversize_days);
    w.count(table.classes.len());
    for c in &table.classes {
        w.u64(c.form);
        w.u64(c.days);
        for &n in &c.category_counts {
            w.u64(n);
        }
        w.u64(c.untagged_nodes);
    }
    w
}

fn read_motifs(mut r: ByteReader<'_>) -> Result<MotifTable, StoreError> {
    let total_days = r.u64("motif total days")?;
    let oversize_days = r.u64("motif oversize days")?;
    let n = r.count(MOTIF_CLASS_BYTES, "motif class count")?;
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let form = r.u64("motif form")?;
        let days = r.u64("motif days")?;
        let mut category_counts = [0u64; Category::COUNT];
        for c in &mut category_counts {
            *c = r.u64("motif category count")?;
        }
        let untagged_nodes = r.u64("motif untagged nodes")?;
        parts.push((form, days, category_counts, untagged_nodes));
    }
    r.finish("motf")?;
    // `id`, node/edge counts, and shares are derived deterministically from
    // the stored parts, so the round trip stays byte-identical.
    Ok(MotifTable::from_parts(total_days, oversize_days, parts))
}

fn write_str(w: &mut ByteWriter, s: &str) {
    w.count(s.len());
    w.bytes(s.as_bytes());
}

fn read_str(r: &mut ByteReader<'_>, context: &str) -> Result<String, StoreError> {
    let n = r.count(1, context)?;
    let bytes = r.bytes(n, context)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| StoreError::malformed(format!("{context} is not UTF-8")))
}

fn write_cohorts(table: &CohortTable) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.u32(table.k_min);
    w.u64(table.seed);
    w.u8(table.method.as_u8());
    w.count(table.cohorts.len());
    for c in &table.cohorts {
        w.u64(c.size);
        w.f64(c.mean_active_days);
        w.f64(c.mean_stays);
        for &v in &c.category_mix {
            w.f64(v);
        }
    }
    w.count(table.users.len());
    for u in &table.users {
        write_str(&mut w, &u.user);
        w.u32(u.cohort);
        w.u64(u.stays);
        w.u64(u.active_days);
        w.u64(u.transitions);
        for &v in &u.category_visits {
            w.u64(v);
        }
        w.count(u.top_units.len());
        for &(unit, visits) in &u.top_units {
            w.u64(unit);
            w.u64(visits);
        }
        w.count(u.features.len());
        for &(key, weight) in &u.features {
            w.u64(key);
            w.f64(weight);
        }
    }
    w
}

/// Bytes of one serialized cohort aggregate: size + two means + the mix.
const COHORT_BYTES: usize = 8 + 8 + 8 + Category::COUNT * 8;
/// Minimal serialized user record: empty id + cohort + three counters +
/// category visits + two empty lists.
const USER_RECORD_MIN_BYTES: usize = 8 + 4 + 3 * 8 + Category::COUNT * 8 + 8 + 8;

fn read_cohorts(mut r: ByteReader<'_>) -> Result<CohortTable, StoreError> {
    let k_min = r.u32("cohort k_min")?;
    let seed = r.u64("cohort seed")?;
    let method = r.u8("cohort method")?;
    let n_cohorts = r.count(COHORT_BYTES, "cohort count")?;
    let mut cohorts = Vec::with_capacity(n_cohorts);
    for id in 0..n_cohorts {
        let size = r.u64("cohort size")?;
        let mean_active_days = r.f64("cohort mean active days")?;
        let mean_stays = r.f64("cohort mean stays")?;
        let mut category_mix = [0.0; Category::COUNT];
        for v in &mut category_mix {
            *v = r.f64("cohort category mix")?;
        }
        cohorts.push(Cohort {
            id: id as u32,
            size,
            category_mix,
            mean_active_days,
            mean_stays,
        });
    }
    let n_users = r.count(USER_RECORD_MIN_BYTES, "cohort user count")?;
    let mut users = Vec::with_capacity(n_users);
    for _ in 0..n_users {
        let user = read_str(&mut r, "cohort user id")?;
        let cohort = r.u32("cohort membership")?;
        let stays = r.u64("cohort user stays")?;
        let active_days = r.u64("cohort user active days")?;
        let transitions = r.u64("cohort user transitions")?;
        let mut category_visits = [0u64; Category::COUNT];
        for v in &mut category_visits {
            *v = r.u64("cohort user category visits")?;
        }
        let n_top = r.count(16, "cohort top-unit count")?;
        let mut top_units = Vec::with_capacity(n_top);
        for _ in 0..n_top {
            let unit = r.u64("cohort top unit")?;
            let visits = r.u64("cohort top unit visits")?;
            top_units.push((unit, visits));
        }
        let n_features = r.count(16, "cohort feature count")?;
        let mut features = Vec::with_capacity(n_features);
        for _ in 0..n_features {
            let key = r.u64("cohort feature key")?;
            let weight = r.f64("cohort feature weight")?;
            features.push((key, weight));
        }
        users.push(UserRecord {
            user,
            cohort,
            stays,
            active_days,
            transitions,
            category_visits,
            top_units,
            features,
        });
    }
    r.finish("coho")?;
    CohortTable::from_parts(k_min, seed, method, cohorts, users)
        .map_err(|e| StoreError::malformed(format!("cohort table invalid: {e}")))
}

/// One section frame of a serialized artifact, as reported by
/// [`section_summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionSummary {
    /// The four-byte tag, e.g. `PATS` or `motf`.
    pub tag: [u8; 4],
    /// Payload size in bytes (excluding the 16-byte frame header).
    pub payload_bytes: u64,
    /// Whether the tag is optional (lowercase first byte): skippable by
    /// readers that do not know it.
    pub optional: bool,
}

impl SectionSummary {
    /// The tag as a printable string.
    pub fn tag_str(&self) -> String {
        String::from_utf8_lossy(&self.tag).into_owned()
    }
}

/// Walks the section frames of a serialized artifact without decoding the
/// payloads (CRCs are still verified), reporting each section's tag, size,
/// and optionality — the `artifact-check` CLI's section report.
pub fn section_summary(bytes: &[u8]) -> Result<Vec<SectionSummary>, StoreError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(MAGIC.len(), "magic")? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32("format version")?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let n_sections = r.u32("section count")? as usize;
    if n_sections > r.remaining() / 16 {
        return Err(StoreError::malformed(format!(
            "section count {n_sections} exceeds what {} remaining byte(s) can hold",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let tag_bytes = r.bytes(4, "section tag")?;
        let tag = [tag_bytes[0], tag_bytes[1], tag_bytes[2], tag_bytes[3]];
        let len = r.u64("section length")?;
        if len > r.remaining().saturating_sub(4) as u64 {
            return Err(StoreError::truncated(format!(
                "section {} payload",
                String::from_utf8_lossy(&tag)
            )));
        }
        let stored_crc = r.u32("section crc")?;
        let payload = r.bytes(len as usize, "section payload")?;
        if crc32(payload) != stored_crc {
            return Err(StoreError::ChecksumMismatch { section: tag });
        }
        out.push(SectionSummary {
            tag,
            payload_bytes: len,
            optional: tag[0].is_ascii_lowercase(),
        });
    }
    if !r.is_exhausted() {
        return Err(StoreError::TrailingBytes {
            count: r.remaining(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::prelude::*;
    use pm_core::recognize::stay_points_of;

    /// A small deterministic mining run over the synthetic city.
    fn mined_run() -> (CitySemanticDiagram, Vec<FinePattern>, MinerParams) {
        let ds = pm_eval::Dataset::generate(&pm_synth::CityConfig::tiny(42));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let stays = stay_points_of(&ds.trajectories);
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        let recognized = recognize_all(&csd, ds.trajectories, &params).expect("recognize");
        let patterns = extract_patterns(&recognized, &params).expect("extract");
        assert!(!patterns.is_empty(), "fixture must mine patterns");
        (csd, patterns, params)
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let (csd, patterns, params) = mined_run();
        let artifact =
            Artifact::new(csd, patterns, params).with_projection(GeoPoint::new(121.4737, 31.2304));
        let bytes = artifact.to_bytes();
        let reloaded = Artifact::from_bytes(&bytes).expect("load");
        assert_eq!(reloaded.to_bytes(), bytes, "re-serialize must be identical");
        assert_eq!(reloaded.patterns.len(), artifact.patterns.len());
        assert_eq!(reloaded.csd.units().len(), artifact.csd.units().len());
        assert_eq!(reloaded.params, artifact.params);
        assert_eq!(
            reloaded.projection.map(|p| (p.lon, p.lat)),
            artifact.projection.map(|p| (p.lon, p.lat))
        );
    }

    #[test]
    fn roundtrip_without_projection() {
        let (csd, patterns, params) = mined_run();
        let artifact = Artifact::new(csd, patterns, params);
        let bytes = artifact.to_bytes();
        let reloaded = Artifact::from_bytes(&bytes).expect("load");
        assert!(reloaded.projection.is_none());
        assert_eq!(reloaded.to_bytes(), bytes);
    }

    #[test]
    fn reloaded_diagram_answers_identical_range_queries() {
        let (csd, patterns, params) = mined_run();
        let artifact = Artifact::new(csd, patterns, params);
        let reloaded = Artifact::from_bytes(&artifact.to_bytes()).expect("load");
        for (x, y, r) in [(0.0, 0.0, 150.0), (2_010.0, 3.0, 80.0), (500.0, 0.0, 50.0)] {
            let q = LocalPoint::new(x, y);
            assert_eq!(artifact.csd.range(q, r), reloaded.csd.range(q, r));
        }
        for (i, u) in artifact.csd.units().iter().enumerate() {
            assert_eq!(u.members, reloaded.csd.units()[i].members);
            for &m in &u.members {
                assert_eq!(reloaded.csd.unit_of(m), Some(i));
            }
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Artifact::from_bytes(b"not-an-artifact-at-all").unwrap_err();
        assert_eq!(err, StoreError::BadMagic);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (csd, patterns, params) = mined_run();
        let mut bytes = Artifact::new(csd, patterns, params).to_bytes();
        bytes[8] = 99; // version field
        assert_eq!(
            Artifact::from_bytes(&bytes).unwrap_err(),
            StoreError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn empty_input_is_truncated_not_panic() {
        assert!(matches!(
            Artifact::from_bytes(&[]).unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }

    #[test]
    fn payload_corruption_fails_the_crc() {
        let (csd, patterns, params) = mined_run();
        let mut bytes = Artifact::new(csd, patterns, params).to_bytes();
        // Flip a byte well inside the first section's payload.
        let target = 16 + 16 + 8;
        bytes[target] ^= 0x10;
        assert!(matches!(
            Artifact::from_bytes(&bytes).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn truncation_mid_stream_is_typed() {
        let (csd, patterns, params) = mined_run();
        let bytes = Artifact::new(csd, patterns, params).to_bytes();
        for cut in [13, 40, bytes.len() / 2, bytes.len() - 1] {
            let err = Artifact::from_bytes(&bytes[..cut]).unwrap_err();
            // A cut can surface as literal truncation or as an implausible
            // count (the allocation guard fires first) — both are typed.
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::Malformed { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (csd, patterns, params) = mined_run();
        let mut bytes = Artifact::new(csd, patterns, params).to_bytes();
        bytes.extend_from_slice(b"junk");
        assert_eq!(
            Artifact::from_bytes(&bytes).unwrap_err(),
            StoreError::TrailingBytes { count: 4 }
        );
    }

    #[test]
    fn empty_run_roundtrips() {
        let params = MinerParams::default();
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        let artifact = Artifact::new(csd, Vec::new(), params);
        let bytes = artifact.to_bytes();
        let reloaded = Artifact::from_bytes(&bytes).expect("load");
        assert!(reloaded.patterns.is_empty());
        assert!(reloaded.csd.units().is_empty());
        assert_eq!(reloaded.to_bytes(), bytes);
    }

    #[test]
    fn file_helpers_roundtrip() {
        let (csd, patterns, params) = mined_run();
        let artifact = Artifact::new(csd, patterns, params);
        let dir = std::env::temp_dir().join("pm-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("artifact-{}.pmstore", std::process::id()));
        artifact.write_file(&path).expect("write");
        let reloaded = Artifact::read_file(&path).expect("read");
        assert_eq!(reloaded.to_bytes(), artifact.to_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Artifact::read_file("/nonexistent/definitely/not/here.pmstore").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
    }

    /// A small motif table with two ranked classes.
    fn motif_table() -> MotifTable {
        let mut agg = pm_motif::MotifAggregator::new();
        for keys in [&[1u64, 2, 1][..], &[3, 4, 3], &[5]] {
            let mut day = pm_motif::DayGraphBuilder::new();
            for &k in keys {
                day.visit(k, Some(Category::Residence));
            }
            agg.record(&day.finish());
        }
        agg.table()
    }

    /// Appends one raw section frame (tag + length + CRC + payload) and
    /// bumps the header's section count — the shape a *newer* writer's
    /// unknown extension would take.
    fn splice_section(bytes: &[u8], tag: [u8; 4], payload: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        let count = u32::from_le_bytes(out[12..16].try_into().unwrap());
        out[12..16].copy_from_slice(&(count + 1).to_le_bytes());
        out.extend_from_slice(&tag);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn motif_section_roundtrips_byte_identically() {
        let (csd, patterns, params) = mined_run();
        let artifact = Artifact::new(csd, patterns, params).with_motifs(motif_table());
        let bytes = artifact.to_bytes();
        let reloaded = Artifact::from_bytes_verified(&bytes).expect("verified load");
        assert!(reloaded.describe().contains("motif classes"));
        let table = reloaded.motifs.expect("motif section present");
        assert_eq!(table, motif_table());
        assert_eq!(table.classes[0].days, 2);
    }

    #[test]
    fn pre_motif_artifact_loads_with_no_motifs() {
        let (csd, patterns, params) = mined_run();
        // The exact bytes a writer predating the motf section produced.
        let bytes = Artifact::new(csd, patterns, params).to_bytes();
        let reloaded = Artifact::from_bytes_verified(&bytes).expect("load");
        assert!(reloaded.motifs.is_none());
    }

    #[test]
    fn unknown_optional_section_is_skipped_and_known_sections_survive() {
        let (csd, patterns, params) = mined_run();
        let original = Artifact::new(csd, patterns, params).to_bytes();
        let spliced = splice_section(&original, *b"zukn", b"future payload this reader ignores");

        // The reader skips the unknown optional section...
        let reloaded = Artifact::from_bytes(&spliced).expect("skip unknown optional");
        // ...and re-serializes the known sections byte-identically.
        assert_eq!(reloaded.to_bytes(), original);
        // The *verified* reader refuses exactly because the skip is lossy —
        // the gate /v1/reload applies before trusting an artifact.
        assert!(Artifact::from_bytes_verified(&spliced).is_err());
        // A corrupted unknown section still fails its CRC: optional means
        // ignorable, not unchecked.
        let mut corrupt = spliced.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            Artifact::from_bytes(&corrupt).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn motif_bearing_artifact_loads_where_the_feature_is_unknown() {
        let (csd, patterns, params) = mined_run();
        let plain = Artifact::new(csd.clone(), patterns.clone(), params).to_bytes();
        let mut with_motifs = Artifact::new(csd, patterns, params)
            .with_motifs(motif_table())
            .to_bytes();

        // Simulate a reader that predates motifs by renaming the motf tag
        // to one no reader knows: walk the frames to the last section (the
        // writer appends motf after the critical ones) and rewrite its tag.
        let mut at = 16;
        loop {
            let len = u64::from_le_bytes(with_motifs[at + 4..at + 12].try_into().unwrap()) as usize;
            let next = at + 16 + len;
            if next == with_motifs.len() {
                break;
            }
            at = next;
        }
        assert_eq!(&with_motifs[at..at + 4], b"motf");
        with_motifs[at..at + 4].copy_from_slice(b"zotf");

        let reloaded = Artifact::from_bytes(&with_motifs).expect("skip unknown motif section");
        assert!(reloaded.motifs.is_none());
        assert_eq!(
            reloaded.to_bytes(),
            plain,
            "known sections must re-serialize exactly as the pre-motif artifact"
        );
    }

    /// A small cohort table over two behavioral groups.
    fn cohort_table() -> CohortTable {
        let mut embeddings = Vec::new();
        for u in 0..8 {
            let cat = if u < 5 {
                Category::Residence
            } else {
                Category::Shop
            };
            let unit0 = if u < 5 { 0 } else { 40 };
            let stays: Vec<pm_cohort::UserStay> = (0..6)
                .map(|i| pm_cohort::UserStay {
                    unit: unit0 + (i % 2) as u64,
                    category: Some(cat),
                    time: (i * 30_000) as i64,
                })
                .collect();
            embeddings.push(pm_cohort::embed_user(format!("user-{u:02}"), &stays));
        }
        CohortTable::mine(
            embeddings,
            &pm_cohort::CohortParams {
                k_min: 3,
                ..pm_cohort::CohortParams::default()
            },
        )
    }

    #[test]
    fn cohort_section_roundtrips_byte_identically() {
        let (csd, patterns, params) = mined_run();
        let artifact = Artifact::new(csd, patterns, params).with_cohorts(cohort_table());
        let bytes = artifact.to_bytes();
        let reloaded = Artifact::from_bytes_verified(&bytes).expect("verified load");
        assert!(reloaded.describe().contains("cohorts over"));
        let table = reloaded.cohorts.expect("cohort section present");
        assert_eq!(table, cohort_table());
        assert_eq!(table.k_min, 3);
        assert_eq!(table.users.len(), 8);
    }

    #[test]
    fn pre_cohort_artifact_loads_with_no_cohorts() {
        let (csd, patterns, params) = mined_run();
        let bytes = Artifact::new(csd, patterns, params).to_bytes();
        let reloaded = Artifact::from_bytes_verified(&bytes).expect("load");
        assert!(reloaded.cohorts.is_none());
    }

    #[test]
    fn cohort_bearing_artifact_loads_where_the_feature_is_unknown() {
        let (csd, patterns, params) = mined_run();
        let plain = Artifact::new(csd.clone(), patterns.clone(), params).to_bytes();
        let mut with_cohorts = Artifact::new(csd, patterns, params)
            .with_cohorts(cohort_table())
            .to_bytes();

        // Rename the trailing coho tag so the reader treats it as an
        // unknown optional section — the motf forward-compat contract.
        let mut at = 16;
        loop {
            let len =
                u64::from_le_bytes(with_cohorts[at + 4..at + 12].try_into().unwrap()) as usize;
            let next = at + 16 + len;
            if next == with_cohorts.len() {
                break;
            }
            at = next;
        }
        assert_eq!(&with_cohorts[at..at + 4], b"coho");
        with_cohorts[at..at + 4].copy_from_slice(b"zoho");

        let reloaded = Artifact::from_bytes(&with_cohorts).expect("skip unknown cohort section");
        assert!(reloaded.cohorts.is_none());
        assert_eq!(reloaded.to_bytes(), plain);
    }

    #[test]
    fn corrupt_cohort_payload_is_rejected() {
        let (csd, patterns, params) = mined_run();
        let mut table = cohort_table();
        table.cohorts[0].size += 1; // inconsistent member count
        let bytes = Artifact::new(csd, patterns, params)
            .with_cohorts(table)
            .to_bytes();
        assert!(matches!(
            Artifact::from_bytes(&bytes).unwrap_err(),
            StoreError::Malformed { .. }
        ));
    }

    #[test]
    fn section_summary_reports_optional_sections() {
        let (csd, patterns, params) = mined_run();
        let plain = Artifact::new(csd.clone(), patterns.clone(), params).to_bytes();
        let summary = section_summary(&plain).expect("summary");
        assert!(summary.iter().all(|s| !s.optional));
        assert!(summary.iter().any(|s| s.tag == TAG_PATS));

        let full = Artifact::new(csd, patterns, params)
            .with_motifs(motif_table())
            .with_cohorts(cohort_table())
            .to_bytes();
        let summary = section_summary(&full).expect("summary");
        let motf = summary.iter().find(|s| s.tag == TAG_MOTF).expect("motf");
        let coho = summary.iter().find(|s| s.tag == TAG_COHO).expect("coho");
        assert!(motf.optional && coho.optional);
        assert!(coho.payload_bytes > 0);
        assert_eq!(coho.tag_str(), "coho");

        // A CRC flip is still caught without decoding payloads.
        let mut corrupt = full.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(matches!(
            section_summary(&corrupt).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
    }
}
