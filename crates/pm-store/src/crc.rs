//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the per-section
//! checksum of the `pm-store/1` artifact format.
//!
//! std-only: the 256-entry lookup table is computed at compile time, so
//! checksumming costs one table lookup and two XORs per byte.

/// The reflected IEEE CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-indexed CRC table, built in a `const` context.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE: initial value and final XOR are `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let data = vec![0x5Au8; 1024];
        let base = crc32(&data);
        for byte in [0usize, 511, 1023] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}
