//! Crash-safe artifact publication: atomic writes, read-back verification,
//! retained generations, and last-good degradation.
//!
//! The online loop re-mines patterns in the background and must never swap
//! a bad artifact into the serving path. This module provides the publish
//! side of that guarantee:
//!
//! - [`write_file_atomic`] — temp file in the same directory + fsync +
//!   rename + parent-directory fsync, so a crash leaves either the old
//!   file or the new one, never a torn hybrid;
//! - [`GenerationStore`] — a directory of numbered artifact generations
//!   (`gen-<n>.pmstore`) with a `CURRENT` pointer. [`GenerationStore::publish`]
//!   verifies every candidate by **reading its own bytes back** through
//!   [`Artifact::from_bytes_verified`] before the pointer moves; a
//!   candidate that fails verification is deleted and the previous
//!   generation keeps serving. [`GenerationStore::latest_good`] scans
//!   generations newest-first, skipping anything corrupt — the degradation
//!   path that keeps a service answering from the last good snapshot even
//!   after on-disk damage.
//!
//! Retention: publishing garbage-collects older generations beyond a
//! configurable keep count, never touching the one `CURRENT` points at.

use crate::artifact::Artifact;
use crate::error::StoreError;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Name of the pointer file holding the current generation number.
const CURRENT: &str = "CURRENT";

/// Writes `bytes` to `path` atomically: a temp file beside it is written,
/// fsynced, and renamed over the target, then the parent directory is
/// fsynced so the rename itself is durable. A crash at any point leaves
/// the previous file (or nothing), never a partial write.
pub fn write_file_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), StoreError> {
    let path = path.as_ref();
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = path.with_extension("tmp-publish");
    let mut file =
        File::create(&tmp).map_err(|e| StoreError::io(format!("create {}: {e}", tmp.display())))?;
    file.write_all(bytes)
        .and_then(|()| file.sync_all())
        .map_err(|e| StoreError::io(format!("write {}: {e}", tmp.display())))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        StoreError::io(format!("rename over {}: {e}", path.display()))
    })?;
    if let Some(dir) = parent {
        sync_dir(dir)?;
    }
    Ok(())
}

#[cfg(unix)]
fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| StoreError::io(format!("sync dir {}: {e}", dir.display())))
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> Result<(), StoreError> {
    Ok(())
}

/// What one successful publish did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReceipt {
    /// The generation number just published (now `CURRENT`).
    pub generation: u64,
    /// Path of the published artifact file.
    pub path: PathBuf,
    /// Older generation files garbage-collected by retention.
    pub collected: u64,
}

/// A directory of numbered, verified artifact generations.
#[derive(Debug, Clone)]
pub struct GenerationStore {
    dir: PathBuf,
    keep: usize,
}

impl GenerationStore {
    /// Opens (creating if needed) a store at `dir` retaining at least the
    /// newest `keep` generations (`keep` is clamped to 1: the current
    /// generation is never collectable).
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<GenerationStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create {}: {e}", dir.display())))?;
        Ok(GenerationStore {
            dir,
            keep: keep.max(1),
        })
    }

    /// The directory generations live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of generation `n`.
    pub fn generation_path(&self, n: u64) -> PathBuf {
        self.dir.join(format!("gen-{n:08}.pmstore"))
    }

    /// The generation `CURRENT` points at, if the pointer exists and
    /// parses. A missing or mangled pointer is `None`, not an error — the
    /// scan-down in [`GenerationStore::latest_good`] covers for it.
    pub fn current_generation(&self) -> Option<u64> {
        let raw = fs::read_to_string(self.dir.join(CURRENT)).ok()?;
        raw.trim().parse().ok()
    }

    /// All generation numbers present on disk, ascending.
    pub fn generations(&self) -> Vec<u64> {
        let mut out: Vec<u64> = match fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .flatten()
                .filter_map(|e| {
                    e.file_name()
                        .to_str()?
                        .strip_prefix("gen-")?
                        .strip_suffix(".pmstore")?
                        .parse()
                        .ok()
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        out.sort_unstable();
        out
    }

    /// Publishes `bytes` as the next generation — atomically written,
    /// then **verified by reading the file back** through
    /// [`Artifact::read_file_verified`] before `CURRENT` moves. On any
    /// verification failure the candidate file is deleted and the error
    /// returned: the previous generation remains `CURRENT`, untouched.
    /// Retention then collects generations older than the newest `keep`.
    pub fn publish(&self, bytes: &[u8]) -> Result<PublishReceipt, StoreError> {
        let next = self.generations().last().map_or(1, |g| g + 1);
        let path = self.generation_path(next);
        write_file_atomic(&path, bytes)?;
        // Read-back verification: what landed on disk must decode and
        // re-serialize byte-identically. This catches silent write damage
        // and corrupt candidates alike, before anyone can serve them.
        if let Err(e) = Artifact::read_file_verified(&path) {
            let _ = fs::remove_file(&path);
            return Err(e);
        }
        write_file_atomic(self.dir.join(CURRENT), format!("{next}\n").as_bytes())?;
        let mut collected = 0;
        let all = self.generations();
        if all.len() > self.keep {
            for &old in &all[..all.len() - self.keep] {
                if old == next {
                    continue; // never collect what CURRENT points at
                }
                if fs::remove_file(self.generation_path(old)).is_ok() {
                    collected += 1;
                }
            }
        }
        Ok(PublishReceipt {
            generation: next,
            path,
            collected,
        })
    }

    /// The newest generation that still verifies, preferring `CURRENT`.
    /// Scans downward past corrupt or missing files — the last-good
    /// degradation path. `Ok(None)` means the store holds no usable
    /// artifact at all.
    pub fn latest_good(&self) -> Result<Option<(u64, Artifact)>, StoreError> {
        let mut candidates = self.generations();
        // Prefer the CURRENT pointer when it names an existing generation:
        // move it to the back so it is tried first.
        if let Some(cur) = self.current_generation() {
            if let Some(idx) = candidates.iter().position(|&g| g == cur) {
                let g = candidates.remove(idx);
                candidates.push(g);
            }
        }
        for g in candidates.into_iter().rev() {
            if let Ok(artifact) = Artifact::read_file_verified(self.generation_path(g)) {
                return Ok(Some((g, artifact)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pm-publish-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A minimal but real artifact (empty CSD, no patterns).
    fn artifact_bytes() -> &'static [u8] {
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        BYTES.get_or_init(|| {
            let params = pm_core::params::MinerParams::default();
            let csd = pm_core::construct::CitySemanticDiagram::build(&[], &[], &params)
                .expect("empty csd");
            Artifact::new(csd, Vec::new(), params).to_bytes()
        })
    }

    #[test]
    fn atomic_write_replaces_and_survives() {
        let dir = scratch();
        fs::create_dir_all(&dir).expect("dir");
        let path = dir.join("file.bin");
        write_file_atomic(&path, b"one").expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"one");
        write_file_atomic(&path, b"two").expect("overwrite");
        assert_eq!(fs::read(&path).expect("read"), b"two");
        // No temp litter left behind.
        assert_eq!(fs::read_dir(&dir).expect("ls").count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn publish_advances_current_and_serves_back() {
        let dir = scratch();
        let store = GenerationStore::open(&dir, 3).expect("open");
        assert!(store.latest_good().expect("scan").is_none());
        let r1 = store.publish(artifact_bytes()).expect("publish 1");
        assert_eq!(r1.generation, 1);
        let r2 = store.publish(artifact_bytes()).expect("publish 2");
        assert_eq!(r2.generation, 2);
        assert_eq!(store.current_generation(), Some(2));
        let (g, _artifact) = store.latest_good().expect("scan").expect("good");
        assert_eq!(g, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_candidate_is_rejected_and_previous_survives() {
        let dir = scratch();
        let store = GenerationStore::open(&dir, 3).expect("open");
        store.publish(artifact_bytes()).expect("publish good");
        // Candidates corrupted every way must be refused without moving
        // CURRENT or leaving files behind.
        for (i, mode) in [
            pm_synth::ByteCorruption::BitFlip,
            pm_synth::ByteCorruption::Truncate,
            pm_synth::ByteCorruption::GarbageRun,
            pm_synth::ByteCorruption::TrailingGarbage,
        ]
        .into_iter()
        .enumerate()
        {
            let bad = pm_synth::corrupt_bytes(artifact_bytes(), mode, i as u64 + 7);
            assert!(store.publish(&bad).is_err(), "{mode:?} accepted");
            assert_eq!(
                store.current_generation(),
                Some(1),
                "{mode:?} moved CURRENT"
            );
            assert_eq!(store.generations(), vec![1], "{mode:?} left litter");
        }
        let (g, _) = store.latest_good().expect("scan").expect("good");
        assert_eq!(g, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_newest_and_never_current() {
        let dir = scratch();
        let store = GenerationStore::open(&dir, 2).expect("open");
        for _ in 0..5 {
            store.publish(artifact_bytes()).expect("publish");
        }
        assert_eq!(store.generations(), vec![4, 5]);
        assert_eq!(store.current_generation(), Some(5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_good_degrades_past_on_disk_damage() {
        let dir = scratch();
        let store = GenerationStore::open(&dir, 5).expect("open");
        store.publish(artifact_bytes()).expect("publish 1");
        store.publish(artifact_bytes()).expect("publish 2");
        store.publish(artifact_bytes()).expect("publish 3");
        // Damage the newest generation on disk after publication.
        let newest = store.generation_path(3);
        let bytes = fs::read(&newest).expect("read");
        fs::write(
            &newest,
            pm_synth::corrupt_bytes(&bytes, pm_synth::ByteCorruption::BitFlip, 99),
        )
        .expect("damage");
        let (g, _) = store.latest_good().expect("scan").expect("good");
        assert_eq!(g, 2, "scan-down skips the damaged CURRENT");
        // Damage everything: the store reports no usable artifact.
        for g in store.generations() {
            fs::write(store.generation_path(g), b"junk").expect("wreck");
        }
        assert!(store.latest_good().expect("scan").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mangled_current_pointer_falls_back_to_scan() {
        let dir = scratch();
        let store = GenerationStore::open(&dir, 3).expect("open");
        store.publish(artifact_bytes()).expect("publish");
        store.publish(artifact_bytes()).expect("publish");
        fs::write(dir.join("CURRENT"), b"not a number").expect("mangle");
        assert_eq!(store.current_generation(), None);
        let (g, _) = store.latest_good().expect("scan").expect("good");
        assert_eq!(g, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
