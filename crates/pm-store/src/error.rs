//! [`StoreError`]: the typed failure taxonomy of artifact reading/writing.
//!
//! Mirrors the PR-1 failure model of the mining pipeline: a corrupt,
//! truncated, or wrong-version artifact is *data* trouble, and data trouble
//! must surface as a typed `Err`, never a panic. Every reader path in this
//! crate is bounds-checked and count-capped so even adversarial inputs
//! (fault-injection bit flips, truncations, garbage) map onto one of these
//! variants.

use std::fmt;

/// A four-byte section tag rendered for messages (lossy ASCII).
fn tag_str(tag: [u8; 4]) -> String {
    tag.iter()
        .map(|&b| if b.is_ascii_graphic() { b as char } else { '?' })
        .collect()
}

/// Why an artifact could not be read (or written).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem trouble, rendered as text so the error stays `PartialEq`.
    Io { message: String },
    /// The file does not start with the `pm-store` magic.
    BadMagic,
    /// The format version is not one this reader understands.
    UnsupportedVersion { found: u32 },
    /// The byte stream ended before the structure it promised.
    /// `context` names what was being read.
    Truncated { context: String },
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch { section: [u8; 4] },
    /// The same section appeared twice.
    DuplicateSection { section: [u8; 4] },
    /// A *critical* (uppercase-tagged) section this reader does not know.
    /// Optional (lowercase-tagged) sections are skipped instead — the
    /// format's forward-compatibility policy.
    UnknownSection { section: [u8; 4] },
    /// A section required by the format is absent.
    MissingSection { section: &'static str },
    /// A payload decoded but its content is invalid (bad enum value,
    /// implausible count, length mismatch, inconsistent cross-references).
    Malformed { context: String },
    /// Bytes remain after the last declared section.
    TrailingBytes { count: usize },
}

impl StoreError {
    /// Short machine-checkable name of the failure kind.
    pub fn kind(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "io",
            StoreError::BadMagic => "bad_magic",
            StoreError::UnsupportedVersion { .. } => "unsupported_version",
            StoreError::Truncated { .. } => "truncated",
            StoreError::ChecksumMismatch { .. } => "checksum_mismatch",
            StoreError::DuplicateSection { .. } => "duplicate_section",
            StoreError::UnknownSection { .. } => "unknown_section",
            StoreError::MissingSection { .. } => "missing_section",
            StoreError::Malformed { .. } => "malformed",
            StoreError::TrailingBytes { .. } => "trailing_bytes",
        }
    }

    pub(crate) fn truncated(context: impl Into<String>) -> StoreError {
        StoreError::Truncated {
            context: context.into(),
        }
    }

    pub(crate) fn io(message: impl Into<String>) -> StoreError {
        StoreError::Io {
            message: message.into(),
        }
    }

    pub(crate) fn malformed(context: impl Into<String>) -> StoreError {
        StoreError::Malformed {
            context: context.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { message } => write!(f, "artifact I/O failed: {message}"),
            StoreError::BadMagic => write!(f, "not a pm-store artifact (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported artifact format version {found}")
            }
            StoreError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "section {} failed its CRC check", tag_str(*section))
            }
            StoreError::DuplicateSection { section } => {
                write!(f, "section {} appears twice", tag_str(*section))
            }
            StoreError::UnknownSection { section } => write!(
                f,
                "unknown critical section {} (newer writer?)",
                tag_str(*section)
            ),
            StoreError::MissingSection { section } => {
                write!(f, "required section {section} is missing")
            }
            StoreError::Malformed { context } => write!(f, "malformed artifact: {context}"),
            StoreError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after the last section")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let variants = [
            StoreError::Io {
                message: "x".into(),
            },
            StoreError::BadMagic,
            StoreError::UnsupportedVersion { found: 9 },
            StoreError::truncated("POIS count"),
            StoreError::ChecksumMismatch { section: *b"POIS" },
            StoreError::DuplicateSection { section: *b"PARM" },
            StoreError::UnknownSection {
                section: *b"XY\xffZ",
            },
            StoreError::MissingSection { section: "PATS" },
            StoreError::malformed("category 99 out of range"),
            StoreError::TrailingBytes { count: 3 },
        ];
        for v in &variants {
            assert!(!format!("{v}").is_empty());
            assert!(!v.kind().is_empty());
        }
        // Non-graphic tag bytes render as '?', not garbage.
        let s = format!(
            "{}",
            StoreError::UnknownSection {
                section: *b"XY\xffZ"
            }
        );
        assert!(s.contains("XY?Z"), "{s}");
    }
}
