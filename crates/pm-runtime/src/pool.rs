//! [`WorkerPool`]: a fixed pool of long-lived worker threads with a
//! **bounded** job queue.
//!
//! The fork–join maps in the crate root fit batch pipeline stages, where the
//! work is known up front. A network service has the opposite shape: jobs
//! arrive one at a time, forever, and the server must *refuse* work beyond
//! its capacity rather than queue without bound. This pool provides exactly
//! that contract:
//!
//! - `threads` workers are spawned once and reused for every job;
//! - the queue holds at most `queue_capacity` pending jobs; submission past
//!   that fails fast with [`SubmitError::Full`] so the caller can shed load
//!   (pm-serve turns this into an HTTP `503`);
//! - [`WorkerPool::shutdown`] drains the queue, then joins every worker —
//!   jobs already accepted are always run.
//!
//! Workers report their slot through [`current_worker`](crate::current_worker),
//! so observability spans recorded inside pool jobs carry worker ids exactly
//! like spans inside `par_map` regions. A panicking job poisons nothing:
//! the panic is contained to the job and the worker moves on.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a job submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending-job queue is at capacity; shed load or retry later.
    Full,
    /// The pool is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Full => write!(f, "worker pool queue is full"),
            SubmitError::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    wake: Condvar,
    shutting_down: AtomicBool,
    capacity: usize,
}

/// A fixed-size worker pool over a bounded queue. See the module docs.
pub struct WorkerPool {
    state: Arc<PoolState>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .field("capacity", &self.state.capacity)
            .field("queued", &self.queued())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (resolved through
    /// [`resolve_threads`](crate::resolve_threads), so `0` means all cores)
    /// sharing a queue of at most `queue_capacity` pending jobs
    /// (`queue_capacity == 0` degenerates to "reject unless a worker is
    /// already free to pick the job up", which still admits one job at a
    /// time; it is clamped to 1).
    pub fn new(threads: usize, queue_capacity: usize) -> WorkerPool {
        let threads = crate::resolve_threads(threads);
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            capacity: queue_capacity.max(1),
        });
        let workers = (0..threads)
            .map(|slot| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(slot, &state))
            })
            .collect();
        WorkerPool { state, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Maximum number of pending jobs before [`WorkerPool::try_execute`]
    /// sheds (the clamped `queue_capacity` this pool was built with).
    pub fn capacity(&self) -> usize {
        self.state.capacity
    }

    /// Jobs currently pending (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.state
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Submits a job, failing fast instead of blocking: [`SubmitError::Full`]
    /// when the queue is at capacity, [`SubmitError::ShuttingDown`] after
    /// [`WorkerPool::shutdown`] has begun.
    pub fn try_execute<F>(&self, job: F) -> Result<(), SubmitError>
    where
        F: FnOnce() + Send + 'static,
    {
        if self.state.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut queue = self
            .state
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if queue.len() >= self.state.capacity {
            return Err(SubmitError::Full);
        }
        queue.push_back(Box::new(job));
        drop(queue);
        self.state.wake.notify_one();
        Ok(())
    }

    /// Graceful shutdown: stops accepting work, lets the workers drain every
    /// job already queued, then joins them. Blocks until all workers exit.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a caught job is already
            // accounted for; joining must not re-panic the caller.
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::Release);
        self.state.wake.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping without an explicit shutdown still terminates the workers
        // (after draining), so tests and error paths cannot leak threads.
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(slot: usize, state: &PoolState) {
    loop {
        let job = {
            let mut queue = state
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if state.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                queue = state
                    .wake
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Contain job panics to the job: the worker survives to serve the
        // next one, mirroring a request handler that must not take the
        // server down.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::in_worker(slot, job);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            loop {
                let c = Arc::clone(&counter);
                if pool
                    .try_execute(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                    .is_ok()
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        // One worker held busy; capacity 2 -> the 4th..nth submissions after
        // the blocker must start failing with Full at some point.
        let pool = WorkerPool::new(1, 2);
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        pool.try_execute(move || {
            while !g.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
        })
        .expect("first job accepted");
        // Fill the queue (the blocker may or may not have been dequeued yet,
        // so up to capacity + 1 submissions can succeed).
        let mut rejected = false;
        for _ in 0..4 {
            if pool.try_execute(|| {}) == Err(SubmitError::Full) {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "bounded queue must reject past capacity");
        gate.store(true, Ordering::Release);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let pool = WorkerPool::new(2, 128);
        let counter = Arc::new(AtomicUsize::new(0));
        let n = 50;
        for _ in 0..n {
            let c = Arc::clone(&counter);
            pool.try_execute(move || {
                std::thread::sleep(Duration::from_micros(200));
                c.fetch_add(1, Ordering::SeqCst);
            })
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            n,
            "every accepted job must run before shutdown returns"
        );
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.try_execute(|| panic!("job panic")).expect("accepted");
        let done = Arc::new(AtomicBool::new(false));
        // The single worker must survive the panic to run this.
        loop {
            let d = Arc::clone(&done);
            if pool
                .try_execute(move || d.store(true, Ordering::SeqCst))
                .is_ok()
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn jobs_report_worker_slots() {
        let pool = WorkerPool::new(2, 64);
        let seen = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..32 {
            loop {
                let s = Arc::clone(&seen);
                if pool
                    .try_execute(move || {
                        let w = crate::current_worker();
                        s.lock().unwrap().push(w);
                        std::thread::sleep(Duration::from_micros(100));
                    })
                    .is_ok()
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        pool.shutdown();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 32);
        assert!(
            seen.iter().all(|w| matches!(w, Some(0 | 1))),
            "pool jobs must observe their worker slot: {seen:?}"
        );
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let pool = WorkerPool::new(1, 4);
        pool.state.shutting_down.store(true, Ordering::Release);
        assert_eq!(pool.try_execute(|| {}), Err(SubmitError::ShuttingDown));
    }
}
