//! [`ShardPool`]: one long-lived worker thread per shard, each draining its
//! own FIFO queue.
//!
//! [`WorkerPool`](crate::WorkerPool) multiplexes anonymous jobs over a shared
//! queue — any worker may pick up any job, which is exactly wrong for
//! *sharded state*: a shard's mutations must execute **in submission order**
//! and never concurrently with each other. This pool pins every shard to a
//! dedicated thread and a dedicated `mpsc` channel, which gives the two
//! guarantees sharded engines lean on:
//!
//! - **per-shard FIFO**: jobs submitted to shard `k` run in exactly the
//!   order they were submitted (single consumer on an order-preserving
//!   channel);
//! - **per-shard exclusivity**: at most one job for shard `k` is ever
//!   running (it is the only thing shard `k`'s thread does).
//!
//! Jobs for *different* shards run concurrently, so a batch scattered over
//! the shards is processed in parallel while every shard still observes a
//! serial history. Submission is non-blocking ([`ShardPool::run`] returns a
//! receiver for the job's result); cross-shard joins are the caller's
//! choice, not the pool's.
//!
//! Workers report their shard through
//! [`current_worker`](crate::current_worker), mirroring `par_map` regions. A
//! panicking job is contained: the worker survives, and the panic surfaces
//! to the submitter as a disconnected result channel.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of single-threaded executors, one per shard. See the module
/// docs for the ordering guarantees.
pub struct ShardPool {
    senders: Vec<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns one worker thread per shard. `shards` must be at least 1.
    pub fn new(shards: usize) -> ShardPool {
        assert!(shards >= 1, "ShardPool needs at least one shard");
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::<Job>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("pm-shard-{shard}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        crate::in_worker(shard, || {
                            // Contain panics to the job: the submitter sees a
                            // disconnected result channel, the shard thread
                            // keeps serving subsequent jobs.
                            let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
                        });
                    }
                })
                .expect("spawn shard worker");
            workers.push(handle);
        }
        ShardPool { senders, workers }
    }

    /// Number of shards (worker threads) in the pool.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Submits `job` to `shard`'s queue and returns a receiver for its
    /// result. Never blocks: the queue is unbounded, because shard engines
    /// apply backpressure upstream (pm-serve's bounded request queue) and a
    /// submitted mutation must not be silently dropped.
    ///
    /// Receiving `Err` means the job panicked.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn run<R, F>(&self, shard: usize, job: F) -> Receiver<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (tx, rx) = channel();
        let boxed: Job = Box::new(move || {
            // The submitter may have stopped listening; a dead receiver is
            // not the job's problem.
            let _ = tx.send(job());
        });
        self.senders[shard]
            .send(boxed)
            .expect("shard worker thread is alive while the pool exists");
        rx
    }

    /// Runs a no-op on `shard` and waits for it: every job submitted to that
    /// shard before this call has finished when `barrier` returns.
    pub fn barrier(&self, shard: usize) {
        let done = self.run(shard, || ());
        done.recv().expect("barrier job never panics");
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the channels lets each worker drain its queue and exit.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn per_shard_jobs_run_in_submission_order() {
        let pool = ShardPool::new(3);
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut last = None;
        for i in 0..50 {
            let log = Arc::clone(&log);
            last = Some(pool.run(1, move || log.lock().unwrap().push(i)));
        }
        last.unwrap().recv().expect("final job");
        let seen = log.lock().unwrap().clone();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shards_run_concurrently_and_report_their_slot() {
        let pool = ShardPool::new(4);
        let results: Vec<_> = (0..4).map(|s| pool.run(s, crate::current_worker)).collect();
        for (s, rx) in results.into_iter().enumerate() {
            assert_eq!(rx.recv().expect("job"), Some(s));
        }
    }

    #[test]
    fn a_panicking_job_disconnects_its_receiver_but_not_the_shard() {
        let pool = ShardPool::new(1);
        let rx = pool.run(0, || panic!("contained"));
        assert!(rx.recv().is_err(), "panic surfaces as disconnection");
        let ok = pool.run(0, || 7);
        assert_eq!(ok.recv().expect("shard survived"), 7);
    }

    #[test]
    fn barrier_waits_for_prior_jobs() {
        let pool = ShardPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let hits = Arc::clone(&hits);
            pool.run(0, move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.barrier(0);
        assert_eq!(hits.load(Ordering::SeqCst), 20);
    }
}
