//! Supervision primitives for long-running background work: capped
//! exponential backoff with deterministic jitter, and a consecutive-failure
//! circuit breaker.
//!
//! Both types are **time-free state machines**: they never read a clock or a
//! global RNG. [`Backoff`] computes the *duration* the caller should wait
//! (the caller sleeps); [`CircuitBreaker`] tracks consecutive failures and
//! tells the caller when to stop trying for a cooldown period (the caller
//! owns the cooldown timer and reports its expiry). That keeps supervisors
//! built on them fully deterministic under test: feed the same sequence of
//! `record_failure` / `record_success` / `cooldown_elapsed` events and the
//! same delays and transitions come back, every run.
//!
//! Jitter is seeded (a SplitMix64 step per draw) so retry storms decorrelate
//! in production while tests can still assert exact delays.

use std::time::Duration;

/// Capped exponential backoff: `base * 2^n` clamped to `max`, plus a
/// deterministic jitter of up to 25% of the pre-jitter delay.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A fresh backoff. `base` is the first delay, `max` caps the
    /// exponential growth (jitter may exceed `max` by at most 25%), and
    /// `seed` drives the jitter stream.
    pub fn new(base: Duration, max: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            max,
            attempt: 0,
            // Avoid the SplitMix64 all-zero fixed point producing a first
            // draw of 0 for every zero-seeded supervisor.
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Consecutive failures recorded since the last [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The delay the *next* failure would produce, without jitter and
    /// without consuming an attempt — what a status endpoint reports.
    pub fn peek(&self) -> Duration {
        self.delay_for(self.attempt)
    }

    /// Records a failure and returns how long to wait before retrying.
    pub fn next_delay(&mut self) -> Duration {
        let flat = self.delay_for(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        // SplitMix64: one multiply-shift scramble per draw.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Up to 25% of the flat delay, in nanosecond resolution.
        let span = (flat.as_nanos() / 4).min(u64::MAX as u128) as u64;
        let jitter = if span == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(z % span)
        };
        flat + jitter
    }

    /// Clears the failure streak; the next delay starts from `base` again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    fn delay_for(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.max)
    }
}

/// Where a circuit currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Normal operation: work is attempted.
    Closed,
    /// Too many consecutive failures: hold all work until the caller's
    /// cooldown timer fires.
    Open,
    /// Cooldown elapsed: exactly one probe attempt is allowed; its outcome
    /// decides between `Closed` and `Open`.
    HalfOpen,
}

/// A consecutive-failure circuit breaker. The caller reports outcomes and
/// cooldown expiry; the breaker answers "should work be attempted?".
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: u32,
    state: CircuitState,
    opens: u64,
}

impl CircuitBreaker {
    /// Opens after `threshold` consecutive failures (`threshold == 0` is
    /// clamped to 1: a breaker that can never close again is useless).
    pub fn new(threshold: u32) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            consecutive: 0,
            state: CircuitState::Closed,
            opens: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> CircuitState {
        self.state
    }

    /// Whether the caller should attempt work right now.
    pub fn allows_attempt(&self) -> bool {
        self.state != CircuitState::Open
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive
    }

    /// How many times the circuit has opened over its lifetime.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Records a successful attempt: the streak clears and the circuit
    /// closes (including from `HalfOpen` — the probe succeeded).
    pub fn record_success(&mut self) {
        self.consecutive = 0;
        self.state = CircuitState::Closed;
    }

    /// Records a failed attempt and returns the resulting state. A failure
    /// in `HalfOpen` re-opens immediately; in `Closed`, the circuit opens
    /// once the streak reaches the threshold.
    pub fn record_failure(&mut self) -> CircuitState {
        self.consecutive = self.consecutive.saturating_add(1);
        let should_open = match self.state {
            CircuitState::HalfOpen => true,
            CircuitState::Closed => self.consecutive >= self.threshold,
            CircuitState::Open => false,
        };
        if should_open {
            self.state = CircuitState::Open;
            self.opens += 1;
        }
        self.state
    }

    /// The caller's cooldown timer fired: an `Open` circuit becomes
    /// `HalfOpen` (one probe allowed). No-op in other states.
    pub fn cooldown_elapsed(&mut self) {
        if self.state == CircuitState::Open {
            self.state = CircuitState::HalfOpen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(2), 7);
        let mut flats = Vec::new();
        for _ in 0..8 {
            flats.push(b.peek());
            b.next_delay();
        }
        assert_eq!(flats[0], Duration::from_millis(100));
        assert_eq!(flats[1], Duration::from_millis(200));
        assert_eq!(flats[2], Duration::from_millis(400));
        assert_eq!(flats[5], Duration::from_secs(2)); // capped
        assert_eq!(flats[7], Duration::from_secs(2)); // stays capped
    }

    #[test]
    fn backoff_jitter_is_bounded_and_deterministic() {
        let run = |seed| {
            let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(1), seed);
            (0..6).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same delays");
        let c = run(43);
        assert_ne!(a, c, "different seeds decorrelate");
        for (i, d) in a.iter().enumerate() {
            let flat = Duration::from_millis(100)
                .saturating_mul(1 << i.min(10))
                .min(Duration::from_secs(1));
            assert!(*d >= flat, "jitter only adds: {d:?} < {flat:?}");
            assert!(
                *d <= flat + flat / 4,
                "jitter bounded by 25%: {d:?} > {:?}",
                flat + flat / 4
            );
        }
    }

    #[test]
    fn backoff_reset_restarts_from_base() {
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(10), 0);
        b.next_delay();
        b.next_delay();
        assert_eq!(b.attempt(), 2);
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.peek(), Duration::from_millis(50));
    }

    #[test]
    fn backoff_extreme_attempts_do_not_overflow() {
        let mut b = Backoff::new(Duration::from_secs(1), Duration::from_secs(30), 1);
        for _ in 0..100 {
            let d = b.next_delay();
            assert!(d <= Duration::from_secs(30) + Duration::from_secs(8));
        }
        assert_eq!(b.peek(), Duration::from_secs(30));
    }

    #[test]
    fn breaker_opens_at_threshold_only() {
        let mut cb = CircuitBreaker::new(3);
        assert_eq!(cb.record_failure(), CircuitState::Closed);
        assert_eq!(cb.record_failure(), CircuitState::Closed);
        assert!(cb.allows_attempt());
        assert_eq!(cb.record_failure(), CircuitState::Open);
        assert!(!cb.allows_attempt());
        assert_eq!(cb.opens(), 1);
        assert_eq!(cb.consecutive_failures(), 3);
    }

    #[test]
    fn breaker_half_open_probe_decides() {
        let mut cb = CircuitBreaker::new(1);
        cb.record_failure();
        assert_eq!(cb.state(), CircuitState::Open);
        cb.cooldown_elapsed();
        assert_eq!(cb.state(), CircuitState::HalfOpen);
        assert!(cb.allows_attempt());
        // Failed probe: straight back to Open, a second open counted.
        assert_eq!(cb.record_failure(), CircuitState::Open);
        assert_eq!(cb.opens(), 2);
        cb.cooldown_elapsed();
        cb.record_success();
        assert_eq!(cb.state(), CircuitState::Closed);
        assert_eq!(cb.consecutive_failures(), 0);
    }

    #[test]
    fn breaker_success_clears_partial_streak() {
        let mut cb = CircuitBreaker::new(3);
        cb.record_failure();
        cb.record_failure();
        cb.record_success();
        assert_eq!(cb.consecutive_failures(), 0);
        cb.record_failure();
        cb.record_failure();
        assert_eq!(cb.state(), CircuitState::Closed, "streak restarted");
    }

    #[test]
    fn breaker_cooldown_in_closed_is_a_noop() {
        let mut cb = CircuitBreaker::new(2);
        cb.cooldown_elapsed();
        assert_eq!(cb.state(), CircuitState::Closed);
        let mut open_counted = CircuitBreaker::new(1);
        open_counted.record_failure();
        open_counted.record_failure(); // failure while already open
        assert_eq!(
            open_counted.opens(),
            1,
            "re-failing while open re-counts nothing"
        );
    }

    #[test]
    fn zero_threshold_is_clamped() {
        let mut cb = CircuitBreaker::new(0);
        assert_eq!(cb.record_failure(), CircuitState::Open);
    }
}
