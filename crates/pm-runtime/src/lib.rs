//! **pm-runtime** — deterministic multi-core execution for the pipeline.
//!
//! The sandboxed build has no crates.io access, so instead of rayon this
//! crate provides the small slice of a data-parallel runtime the pipeline
//! actually needs, on `std::thread::scope` alone:
//!
//! - [`par_map`] / [`par_map_range`] / [`par_map_in_place`]: chunked
//!   fork–join maps over a slice (or index range), each worker writing into
//!   **pre-sized output slots**;
//! - [`par_map_reduce`]: a parallel map whose results are folded **serially
//!   in index order**.
//! - [`WorkerPool`]: a fixed pool of long-lived workers over a **bounded**
//!   job queue, for online services that must shed load instead of queueing
//!   without bound (see [`pool`]).
//! - [`ShardPool`]: one dedicated worker per shard with per-shard FIFO
//!   ordering and exclusivity, for user-keyed sharded state (see [`shard`]).
//! - [`supervise`]: time-free supervision primitives — capped exponential
//!   [`Backoff`] with deterministic jitter and a consecutive-failure
//!   [`CircuitBreaker`] — for background loops that must retry without
//!   storming and stop retrying without dying.
//!
//! # Determinism contract
//!
//! Every function here is *bit-deterministic in the thread count*: the value
//! written to output slot `i` depends only on input `i` and the caller's
//! closure, never on scheduling, chunk boundaries, or how many workers ran.
//! Reductions never happen tree-wise across workers — [`par_map_reduce`]
//! folds the per-item results left-to-right after the join — so float
//! accumulation order (and therefore every rounded bit) is identical for
//! `threads = 1` and `threads = N`. Serial execution is simply the
//! degenerate single-chunk case of the same code path.
//!
//! # Thread-count resolution
//!
//! `threads == 0` means "use [`std::thread::available_parallelism`]";
//! any other value is taken literally. [`default_threads`] additionally
//! honours the `PM_THREADS` environment variable (the knob `scripts/ci.sh`
//! uses to run the test suite both serially and at 4 threads), falling back
//! to `1` so a bare library call stays single-threaded unless asked.

use std::cell::Cell;
use std::num::NonZeroUsize;

pub mod pool;
pub mod shard;
pub mod supervise;

pub use pool::{SubmitError, WorkerPool};
pub use shard::ShardPool;
pub use supervise::{Backoff, CircuitBreaker, CircuitState};

/// Environment variable read by [`default_threads`].
pub const THREADS_ENV: &str = "PM_THREADS";

/// Environment variable read by [`default_shards`]: how many user-keyed
/// ingest shards services should run when no explicit knob is given
/// (`scripts/ci.sh` sweeps the test suite at `PM_SHARDS=1` and `8`).
pub const SHARDS_ENV: &str = "PM_SHARDS";

thread_local! {
    static WORKER_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker slot (0-based chunk index) of the `par_map*` region the
/// calling thread is executing, or `None` outside any parallel region —
/// including the serial inline path and the thread that invoked the map.
///
/// Observability layers use this to tag measurements with the worker that
/// produced them without threading an id through every closure.
pub fn current_worker() -> Option<usize> {
    WORKER_SLOT.with(Cell::get)
}

/// Runs `f` with [`current_worker`] reporting `slot`.
fn in_worker<R>(slot: usize, f: impl FnOnce() -> R) -> R {
    WORKER_SLOT.with(|w| w.set(Some(slot)));
    let out = f();
    WORKER_SLOT.with(|w| w.set(None));
    out
}

/// Resolves a requested thread count: `0` becomes the machine's available
/// parallelism (at least 1), anything else is returned unchanged.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// The thread count requested through the `PM_THREADS` environment variable,
/// if set and parseable (`0` is accepted and means "auto").
pub fn threads_from_env() -> Option<usize> {
    std::env::var(THREADS_ENV).ok()?.trim().parse().ok()
}

/// Default thread count for [`crate`] consumers that expose no explicit
/// knob: `PM_THREADS` when set, otherwise `1` (serial).
pub fn default_threads() -> usize {
    threads_from_env().unwrap_or(1)
}

/// The shard count requested through the `PM_SHARDS` environment variable,
/// if set and parseable to a positive integer.
pub fn shards_from_env() -> Option<usize> {
    std::env::var(SHARDS_ENV)
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&s| s >= 1)
}

/// Default shard count for services that expose no explicit knob:
/// `PM_SHARDS` when set, otherwise `1` (a single shard — the sharded path
/// degenerates to the classic single-engine behaviour byte for byte).
pub fn default_shards() -> usize {
    shards_from_env().unwrap_or(1)
}

/// Splits `n` items over `threads` workers in contiguous chunks. Returns the
/// chunk length (>= 1 for n > 0).
fn chunk_len(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(1)
}

/// Parallel map over a slice: `out[i] = f(&items[i])`.
///
/// Workers own disjoint contiguous chunks of the pre-sized output, so the
/// result is identical — bit for bit — for every thread count. With
/// `threads <= 1` (after [`resolve_threads`]) or fewer than two items per
/// worker the map runs inline without spawning.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = chunk_len(items.len(), threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (w, (in_chunk, out_chunk)) in items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            scope.spawn(move || {
                in_worker(w, || {
                    for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(f(item));
                    }
                })
            });
        }
    });
    // Every slot was filled by exactly one worker; a panic in any worker has
    // already propagated out of the scope above.
    out.into_iter()
        .map(|slot| slot.expect("slot filled"))
        .collect()
}

/// Parallel map over a slice with **work stealing**: `out[i] = f(&items[i])`.
///
/// [`par_map`] hands each worker one contiguous chunk, which is optimal for
/// uniform per-item cost but serializes on the slowest chunk when costs are
/// skewed (one giant coarse pattern among many small ones). Here workers
/// instead claim the next unclaimed index from a shared atomic counter, so a
/// worker stuck on an expensive item never blocks the cheap ones behind it.
///
/// The determinism contract is unchanged: output slot `i` is written exactly
/// once, by whichever worker claimed index `i`, with the value `f(&items[i])`
/// — scheduling moves *which thread* computes an item, never *what* is
/// computed, so the result is bit-identical for every thread count.
pub fn par_map_stealing<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = resolve_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let n = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    /// Shared base pointer into the output slots. Each index is claimed by
    /// exactly one worker via `fetch_add`, so writes through it are disjoint.
    struct Slots<R>(*mut Option<R>);
    unsafe impl<R: Send> Sync for Slots<R> {}

    let slots = Slots(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let (f, next, slots) = (&f, &next, &slots);
    std::thread::scope(|scope| {
        for w in 0..threads {
            scope.spawn(move || {
                in_worker(w, || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    // SAFETY: `i < n` and the atomic counter hands each index
                    // to exactly one worker, so this slot is written once and
                    // never aliased; the scope join publishes the write.
                    unsafe { *slots.0.add(i) = Some(r) };
                });
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("slot filled"))
        .collect()
}

/// Parallel map over an index range: `out[i] = f(i)` for `i in 0..n`.
///
/// The index-driven twin of [`par_map`], for producers that index shared
/// state (e.g. a spatial index) rather than walk a slice.
pub fn par_map_range<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = resolve_threads(threads).min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = chunk_len(n, threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (c, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let base = c * chunk;
            scope.spawn(move || {
                in_worker(c, || {
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = Some(f(base + off));
                    }
                })
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("slot filled"))
        .collect()
}

/// Parallel in-place update: `f(&mut items[i])` for every item, returning
/// the per-item results in index order.
///
/// Used where the pipeline mutates records it already owns (semantic
/// recognition tagging trajectories) while reporting a per-item observation
/// (e.g. a dropped-fix count) that the caller folds deterministically.
pub fn par_map_in_place<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = chunk_len(items.len(), threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (w, (in_chunk, out_chunk)) in items
            .chunks_mut(chunk)
            .zip(out.chunks_mut(chunk))
            .enumerate()
        {
            scope.spawn(move || {
                in_worker(w, || {
                    for (item, slot) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                        *slot = Some(f(item));
                    }
                })
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("slot filled"))
        .collect()
}

/// Parallel map + **serial, index-ordered** fold.
///
/// The map runs under [`par_map`]; the fold then consumes the results
/// left-to-right on the calling thread. This deliberately forgoes tree
/// reduction: for floating-point accumulators the fold order *is* the
/// result, and fixing it to index order is what keeps serial and parallel
/// runs byte-identical.
pub fn par_map_reduce<T, R, A, F, G>(items: &[T], threads: usize, f: F, init: A, fold: G) -> A
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map(items, threads, f).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_is_machine_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 1000, 2000] {
            let parallel = par_map(&items, threads, |x| x * x + 1);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_stealing_matches_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 7).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let parallel = par_map_stealing(&items, threads, |x| x * 3 + 7);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_stealing(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map_stealing(&[9u32], 16, |x| *x), vec![9]);
    }

    #[test]
    fn par_map_stealing_handles_skewed_work() {
        // One item 1000x more expensive than the rest: stealing must still
        // fill every slot with the right value (and, unlike chunked par_map,
        // lets the other workers drain the cheap tail meanwhile).
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_stealing(&items, 4, |&x| {
            let spins = if x == 0 { 100_000 } else { 100 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn par_map_stealing_worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_stealing(&items, 4, |&x| {
                assert!(x != 63, "boom");
                x
            })
        });
        assert!(result.is_err(), "panic in a worker must propagate");
    }

    #[test]
    fn par_map_range_matches_serial() {
        let serial: Vec<usize> = (0..777usize).map(|i| i.wrapping_mul(31)).collect();
        for threads in [1, 2, 5, 16] {
            assert_eq!(
                par_map_range(777, threads, |i| i.wrapping_mul(31)),
                serial,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn par_map_in_place_mutates_and_reports() {
        let mut a: Vec<i64> = (0..501).collect();
        let mut b = a.clone();
        let ra = par_map_in_place(&mut a, 1, |x| {
            *x *= 2;
            *x
        });
        let rb = par_map_in_place(&mut b, 4, |x| {
            *x *= 2;
            *x
        });
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        // A sum whose value depends on accumulation order in general: the
        // index-ordered fold must make every thread count agree bitwise.
        let items: Vec<f64> = (0..10_000)
            .map(|i| (i as f64 * 0.7).sin() * 1e10 + 1e-10 / (i + 1) as f64)
            .collect();
        let reference = par_map_reduce(&items, 1, |x| x * 1.000000119, 0.0f64, |a, r| a + r);
        for threads in [2, 3, 4, 13] {
            let sum = par_map_reduce(&items, threads, |x| x * 1.000000119, 0.0f64, |a, r| a + r);
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map(&[42u32], 4, |x| *x), vec![42]);
        assert_eq!(par_map_range(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u8, 2, 3];
        assert_eq!(par_map(&items, 64, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn worker_ids_cover_all_slots_and_reset() {
        assert_eq!(current_worker(), None);
        let items: Vec<usize> = (0..64).collect();
        let ids = par_map(&items, 4, |_| current_worker());
        let distinct: std::collections::BTreeSet<usize> = ids.iter().flatten().copied().collect();
        assert_eq!(distinct, (0..4).collect());
        // Serial/inline path runs on the calling thread: no worker slot.
        assert_eq!(par_map(&items, 1, |_| current_worker()), vec![None; 64]);
        assert_eq!(current_worker(), None);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, 4, |&x| {
                assert!(x != 63, "boom");
                x
            })
        });
        assert!(result.is_err(), "panic in a worker must propagate");
    }
}
