//! Daily mobility motifs over semantic trajectories.
//!
//! Schneider-style mobility motifs describe the *shape* of a user's day:
//! the directed graph whose nodes are the distinct places visited and whose
//! edges are the observed moves between them. The City Semantic Diagram
//! makes the analytic sharper — nodes are semantic units (or, on the live
//! path, primary categories) rather than anonymous locations — but the
//! graph machinery is the same, and this crate owns it:
//!
//! - [`DayGraphBuilder`] accumulates one user-day of visits into a
//!   self-loop-free directed graph of at most [`MAX_NODES`] nodes. Days
//!   that visit more distinct places than the cap are *counted* under an
//!   oversize bucket, never dropped silently.
//! - [`canonical_form`] maps a graph to a stable `u64` canonical form by
//!   exact permutation canonicalization — the minimum adjacency bit
//!   pattern over all node relabelings, with the (permutation-invariant)
//!   diagonal repurposed to carry the node count. Two day graphs get the
//!   same form iff they are isomorphic; no isomorphism library is needed
//!   at ≤ 8 nodes.
//! - [`MotifAggregator`] folds day graphs into a deterministic
//!   [`MotifTable`]: motif classes ranked by population share, each with
//!   its canonical form, node/edge counts, per-category node breakdown,
//!   and a decodable exemplar adjacency.
//!
//! The crate is std-only and depends only on `pm-core` (for
//! [`Category`]); pm-store persists tables as an optional artifact
//! section, pm-stream folds a sliding live accumulator over the same
//! canonicalization, and pm-serve exposes both as `/v1/motifs` and
//! `/v1/live/motifs`.

use pm_core::types::Category;
use std::collections::BTreeMap;

/// Hard cap on distinct places per day graph. Exact canonicalization
/// enumerates all `n!` relabelings, so the cap keeps the worst case at
/// `8! = 40320` cheap bit-remaps; empirically almost every human day
/// visits far fewer distinct places (the paper's corpus averages 2-4).
pub const MAX_NODES: usize = 8;

/// Packs the node-count marker: bit `i*8+i` set for every `i < n`. Day
/// graphs are self-loop-free, so the adjacency diagonal is always zero
/// and can carry the count; the marker is invariant under relabeling,
/// which keeps `canonical_form` a pure function of the isomorphism class.
fn diagonal_marker(n: usize) -> u64 {
    let mut marker = 0u64;
    for i in 0..n {
        marker |= 1u64 << (i * 8 + i);
    }
    marker
}

/// Applies a node relabeling to an off-diagonal adjacency bit pattern.
fn remap(adj: u64, perm: &[u8]) -> u64 {
    let mut out = 0u64;
    let mut rest = adj;
    while rest != 0 {
        let idx = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        out |= 1u64 << ((perm[idx / 8] as usize) * 8 + perm[idx % 8] as usize);
    }
    out
}

/// The canonical form of an `n`-node directed graph given as an adjacency
/// bit pattern (`bit i*8+j` = edge `i -> j`, diagonal empty): the minimum
/// relabeled pattern over all `n!` node permutations (Heap's algorithm),
/// OR-ed with the diagonal node-count marker. Equal forms iff isomorphic.
///
/// # Panics
/// Panics if `n > MAX_NODES` or `adj` has bits outside the `n x n`
/// off-diagonal block — callers hold these invariants structurally.
pub fn canonical_form(n: usize, adj: u64) -> u64 {
    assert!(n <= MAX_NODES, "canonical_form: {n} nodes exceeds the cap");
    let mut valid = 0u64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                valid |= 1u64 << (i * 8 + j);
            }
        }
    }
    assert!(adj & !valid == 0, "canonical_form: stray adjacency bits");

    let mut perm = [0u8, 1, 2, 3, 4, 5, 6, 7];
    let mut counters = [0usize; MAX_NODES];
    let mut best = remap(adj, &perm);
    let mut i = 0;
    while i < n {
        if counters[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(counters[i], i);
            }
            best = best.min(remap(adj, &perm));
            counters[i] += 1;
            i = 0;
        } else {
            counters[i] = 0;
            i += 1;
        }
    }
    best | diagonal_marker(n)
}

/// Node count encoded in a canonical form's diagonal marker.
pub fn form_nodes(form: u64) -> u8 {
    let mut n = 0u8;
    for i in 0..MAX_NODES {
        if form & (1u64 << (i * 8 + i)) != 0 {
            n += 1;
        }
    }
    n
}

/// Edge count of a canonical form (off-diagonal bits).
pub fn form_edges(form: u64) -> u8 {
    let mut diag = 0u64;
    for i in 0..MAX_NODES {
        diag |= 1u64 << (i * 8 + i);
    }
    (form & !diag).count_ones() as u8
}

/// The exemplar adjacency of a canonical form, decoded as directed edges
/// `(from, to)` in ascending bit order — a concrete representative of the
/// isomorphism class, suitable for rendering.
pub fn form_exemplar_edges(form: u64) -> Vec<(u8, u8)> {
    let mut edges = Vec::new();
    let mut rest = form;
    while rest != 0 {
        let idx = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let (i, j) = (idx / 8, idx % 8);
        if i != j {
            edges.push((i as u8, j as u8));
        }
    }
    edges
}

/// One finalized user-day: either a canonicalized motif with its node
/// category breakdown, or an oversize day (more than [`MAX_NODES`]
/// distinct places — counted, not classified).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DayGraph {
    /// Canonical form; `None` when the day exceeded the node cap.
    pub form: Option<u64>,
    /// Nodes per primary category (indexed by `Category as usize`).
    pub category_counts: [u64; Category::COUNT],
    /// Nodes whose primary category was unknown.
    pub untagged_nodes: u64,
}

/// Accumulates one user-day of place visits into a directed graph.
///
/// `visit` takes an opaque place key — a semantic-unit id on the batch
/// path, a category index on the live path — plus the place's primary
/// category. Consecutive visits to distinct places add an edge; repeats
/// of the current place are absorbed (the graph is self-loop-free).
/// Once the day has seen more than [`MAX_NODES`] distinct places it is
/// marked oversize and further structure is not tracked.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DayGraphBuilder {
    keys: Vec<u64>,
    categories: Vec<Option<Category>>,
    adj: u64,
    last: Option<u8>,
    visits: u64,
    oversize: bool,
}

impl DayGraphBuilder {
    /// An empty day.
    pub fn new() -> DayGraphBuilder {
        DayGraphBuilder::default()
    }

    /// Records a visit to the place identified by `key`.
    pub fn visit(&mut self, key: u64, category: Option<Category>) {
        self.visits += 1;
        if self.oversize {
            return;
        }
        let node = match self.keys.iter().position(|&k| k == key) {
            Some(at) => at,
            None if self.keys.len() == MAX_NODES => {
                self.oversize = true;
                return;
            }
            None => {
                self.keys.push(key);
                self.categories.push(category);
                self.keys.len() - 1
            }
        };
        if let Some(prev) = self.last {
            if prev as usize != node {
                self.adj |= 1u64 << ((prev as usize) * 8 + node);
            }
        }
        self.last = Some(node as u8);
    }

    /// Whether the day saw no visits at all (an empty day has no graph
    /// and must not be finalized).
    pub fn is_empty(&self) -> bool {
        self.visits == 0
    }

    /// Whether the day exceeded the node cap.
    pub fn is_oversize(&self) -> bool {
        self.oversize
    }

    /// Persistence view: `(keys, categories, adj, last, visits, oversize)`
    /// — everything [`DayGraphBuilder::from_parts`] needs to rebuild the
    /// in-progress day exactly.
    #[allow(clippy::type_complexity)]
    pub fn parts(&self) -> (&[u64], &[Option<Category>], u64, Option<u8>, u64, bool) {
        (
            &self.keys,
            &self.categories,
            self.adj,
            self.last,
            self.visits,
            self.oversize,
        )
    }

    /// Rebuilds an in-progress day from persisted parts, re-validating
    /// every structural invariant so corrupt state cannot smuggle in a
    /// graph [`DayGraphBuilder::visit`] could never have built.
    pub fn from_parts(
        keys: Vec<u64>,
        categories: Vec<Option<Category>>,
        adj: u64,
        last: Option<u8>,
        visits: u64,
        oversize: bool,
    ) -> Result<DayGraphBuilder, String> {
        let n = keys.len();
        if n > MAX_NODES {
            return Err(format!("day graph has {n} nodes (max {MAX_NODES})"));
        }
        if categories.len() != n {
            return Err(format!(
                "day graph has {n} keys but {} categories",
                categories.len()
            ));
        }
        for (i, k) in keys.iter().enumerate() {
            if keys[..i].contains(k) {
                return Err(format!("day graph key {k} repeats"));
            }
        }
        let mut valid = 0u64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    valid |= 1u64 << (i * 8 + j);
                }
            }
        }
        if adj & !valid != 0 {
            return Err("day graph adjacency has bits outside its nodes".to_string());
        }
        if let Some(l) = last {
            if l as usize >= n {
                return Err(format!("day graph last node {l} out of range {n}"));
            }
        }
        if visits < n as u64 {
            return Err(format!("day graph has {n} nodes from only {visits} visits"));
        }
        if oversize && n < MAX_NODES {
            return Err(format!("oversize day graph holds only {n} nodes"));
        }
        Ok(DayGraphBuilder {
            keys,
            categories,
            adj,
            last,
            visits,
            oversize,
        })
    }

    /// Canonicalizes the accumulated day.
    ///
    /// # Panics
    /// Panics on an empty day — callers check [`DayGraphBuilder::is_empty`].
    pub fn finish(&self) -> DayGraph {
        assert!(!self.is_empty(), "finish on an empty day graph");
        if self.oversize {
            return DayGraph {
                form: None,
                category_counts: [0; Category::COUNT],
                untagged_nodes: 0,
            };
        }
        let mut category_counts = [0u64; Category::COUNT];
        let mut untagged_nodes = 0u64;
        for c in &self.categories {
            match c {
                Some(c) => category_counts[*c as usize] += 1,
                None => untagged_nodes += 1,
            }
        }
        DayGraph {
            form: Some(canonical_form(self.keys.len(), self.adj)),
            category_counts,
            untagged_nodes,
        }
    }
}

/// One motif class of a [`MotifTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct MotifClass {
    /// Rank id: 0 is the most populous class. Ties on day count break by
    /// ascending canonical form, so ids are deterministic.
    pub id: u32,
    /// The canonical form shared by every day in the class.
    pub form: u64,
    /// Distinct places visited.
    pub nodes: u8,
    /// Directed transitions between distinct places.
    pub edges: u8,
    /// User-days that collapsed to this class.
    pub days: u64,
    /// `days / total_days` — the population share, oversize days included
    /// in the denominator.
    pub share: f64,
    /// Node occurrences per primary category across the class's days.
    pub category_counts: [u64; Category::COUNT],
    /// Node occurrences with no recognized primary category.
    pub untagged_nodes: u64,
}

impl MotifClass {
    /// A concrete representative adjacency, as `(from, to)` edges.
    pub fn exemplar_edges(&self) -> Vec<(u8, u8)> {
        form_exemplar_edges(self.form)
    }
}

/// The ranked motif classes of a population of user-days.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MotifTable {
    /// Every finalized user-day, oversize ones included.
    pub total_days: u64,
    /// Days that exceeded [`MAX_NODES`] distinct places.
    pub oversize_days: u64,
    /// Classes ranked by `(days desc, form asc)`.
    pub classes: Vec<MotifClass>,
}

impl MotifTable {
    /// Rebuilds the derived fields (`id`, `nodes`, `edges`, `share`) from
    /// the stored ones — the persistence codec stores only
    /// `(form, days, category_counts, untagged_nodes)` per class.
    pub fn from_parts(
        total_days: u64,
        oversize_days: u64,
        parts: Vec<(u64, u64, [u64; Category::COUNT], u64)>,
    ) -> MotifTable {
        let classes = parts
            .into_iter()
            .enumerate()
            .map(
                |(id, (form, days, category_counts, untagged_nodes))| MotifClass {
                    id: id as u32,
                    form,
                    nodes: form_nodes(form),
                    edges: form_edges(form),
                    days,
                    share: if total_days == 0 {
                        0.0
                    } else {
                        days as f64 / total_days as f64
                    },
                    category_counts,
                    untagged_nodes,
                },
            )
            .collect();
        MotifTable {
            total_days,
            oversize_days,
            classes,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct ClassAccum {
    days: u64,
    category_counts: [u64; Category::COUNT],
    untagged_nodes: u64,
}

/// Folds finalized day graphs into a deterministic [`MotifTable`].
///
/// Accumulation is order-independent (sums into a form-keyed map), so any
/// partition of the same day-graph multiset — per-shard accumulators
/// merged afterwards, say — produces the identical table.
#[derive(Debug, Clone, Default)]
pub struct MotifAggregator {
    classes: BTreeMap<u64, ClassAccum>,
    total_days: u64,
    oversize_days: u64,
}

impl MotifAggregator {
    /// An empty aggregator.
    pub fn new() -> MotifAggregator {
        MotifAggregator::default()
    }

    /// Folds one finalized day in.
    pub fn record(&mut self, day: &DayGraph) {
        self.total_days += 1;
        match day.form {
            None => self.oversize_days += 1,
            Some(form) => {
                let accum = self.classes.entry(form).or_default();
                accum.days += 1;
                for (i, n) in day.category_counts.iter().enumerate() {
                    accum.category_counts[i] += n;
                }
                accum.untagged_nodes += day.untagged_nodes;
            }
        }
    }

    /// Days folded in so far.
    pub fn total_days(&self) -> u64 {
        self.total_days
    }

    /// The ranked table: classes by `(days desc, canonical form asc)`.
    pub fn table(&self) -> MotifTable {
        let mut ranked: Vec<(&u64, &ClassAccum)> = self.classes.iter().collect();
        ranked.sort_by(|(fa, a), (fb, b)| b.days.cmp(&a.days).then(fa.cmp(fb)));
        MotifTable::from_parts(
            self.total_days,
            self.oversize_days,
            ranked
                .into_iter()
                .map(|(&form, a)| (form, a.days, a.category_counts, a.untagged_nodes))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_place_day_is_the_one_node_motif() {
        let mut day = DayGraphBuilder::new();
        day.visit(42, Some(Category::Residence));
        day.visit(42, Some(Category::Residence));
        assert!(!day.is_empty());
        let g = day.finish();
        let form = g.form.expect("not oversize");
        assert_eq!(form_nodes(form), 1);
        assert_eq!(form_edges(form), 0);
        assert_eq!(g.category_counts[Category::Residence as usize], 1);
    }

    #[test]
    fn commute_and_reverse_commute_share_a_class() {
        // home -> office -> home vs office -> home -> office: isomorphic
        // two-node cycles regardless of which place comes first.
        let mut a = DayGraphBuilder::new();
        a.visit(1, None);
        a.visit(2, None);
        a.visit(1, None);
        let mut b = DayGraphBuilder::new();
        b.visit(9, None);
        b.visit(7, None);
        b.visit(9, None);
        assert_eq!(a.finish().form, b.finish().form);
    }

    #[test]
    fn chain_and_cycle_are_distinct_classes() {
        // a -> b -> c (chain) vs a -> b -> c -> a (cycle).
        let mut chain = DayGraphBuilder::new();
        for k in [1, 2, 3] {
            chain.visit(k, None);
        }
        let mut cycle = DayGraphBuilder::new();
        for k in [1, 2, 3, 1] {
            cycle.visit(k, None);
        }
        let (c1, c2) = (chain.finish().form, cycle.finish().form);
        assert_ne!(c1, c2);
        assert_eq!(form_edges(c1.unwrap()), 2);
        assert_eq!(form_edges(c2.unwrap()), 3);
    }

    #[test]
    fn ninth_distinct_place_marks_the_day_oversize() {
        let mut day = DayGraphBuilder::new();
        for k in 0..=MAX_NODES as u64 {
            day.visit(k, None);
        }
        assert!(day.is_oversize());
        assert_eq!(day.finish().form, None);
    }

    #[test]
    fn revisits_never_overflow_the_cap() {
        let mut day = DayGraphBuilder::new();
        for _ in 0..3 {
            for k in 0..MAX_NODES as u64 {
                day.visit(k, None);
            }
        }
        assert!(!day.is_oversize());
        let form = day.finish().form.unwrap();
        assert_eq!(form_nodes(form), MAX_NODES as u8);
    }

    #[test]
    fn aggregator_ranks_by_days_then_form() {
        let mut agg = MotifAggregator::new();
        let day = |keys: &[u64]| {
            let mut b = DayGraphBuilder::new();
            for &k in keys {
                b.visit(k, Some(Category::Shop));
            }
            b.finish()
        };
        agg.record(&day(&[1, 2, 1])); // two-node cycle, twice
        agg.record(&day(&[3, 4, 3]));
        agg.record(&day(&[5])); // one-node day, once
        let mut nine = DayGraphBuilder::new();
        for k in 0..9u64 {
            nine.visit(k, None);
        }
        agg.record(&nine.finish()); // oversize

        let table = agg.table();
        assert_eq!(table.total_days, 4);
        assert_eq!(table.oversize_days, 1);
        assert_eq!(table.classes.len(), 2);
        assert_eq!(table.classes[0].days, 2);
        assert_eq!(table.classes[0].id, 0);
        assert_eq!(table.classes[0].nodes, 2);
        assert_eq!(table.classes[0].edges, 2);
        assert_eq!(table.classes[0].share, 0.5);
        assert_eq!(
            table.classes[0].category_counts[Category::Shop as usize],
            4,
            "two days x two shop nodes"
        );
        assert_eq!(table.classes[1].days, 1);
        assert_eq!(table.classes[1].nodes, 1);
    }

    #[test]
    fn exemplar_edges_decode_the_form() {
        let mut day = DayGraphBuilder::new();
        for k in [1, 2, 3, 1] {
            day.visit(k, None);
        }
        let form = day.finish().form.unwrap();
        let edges = form_exemplar_edges(form);
        assert_eq!(edges.len(), 3);
        // Re-encoding the exemplar reproduces the form exactly.
        let mut adj = 0u64;
        for (f, t) in &edges {
            adj |= 1u64 << ((*f as usize) * 8 + *t as usize);
        }
        assert_eq!(canonical_form(3, adj), form);
    }

    #[test]
    fn table_roundtrips_through_parts() {
        let mut agg = MotifAggregator::new();
        let mut b = DayGraphBuilder::new();
        b.visit(1, Some(Category::Residence));
        b.visit(2, Some(Category::Business));
        agg.record(&b.finish());
        let table = agg.table();
        let parts = table
            .classes
            .iter()
            .map(|c| (c.form, c.days, c.category_counts, c.untagged_nodes))
            .collect();
        let rebuilt = MotifTable::from_parts(table.total_days, table.oversize_days, parts);
        assert_eq!(rebuilt, table);
    }
}
