//! Shard-count independence of the live motif view, end to end over real
//! sockets.
//!
//! The property: a logical record stream POSTed to `/v1/ingest` produces
//! **byte-identical** `GET /v1/live/motifs` bodies whether the server runs
//! one inline engine (`shards=1`) or fans the stream across 8 user-keyed
//! shards. Day closures land on different shards at different batches —
//! some eagerly when a later day's stay arrives, some lazily when a TTL
//! sweep evicts a quiet user at the next settled read — yet the merged
//! in-window classes and the closure tallies must not depend on the
//! layout. Records deliberately span several day boundaries so day graphs
//! actually close; the stream stays inside the 7-day motif window so
//! nothing ages out mid-comparison.

use pm_core::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_geo::{GeoPoint, LocalPoint};
use pm_obs::Obs;
use pm_serve::{client, ServeConfig, ServeState, Server, Snapshot};
use pm_store::Artifact;
use pm_stream::{
    EngineConfig, Recognizer, ShardConfig, ShardedEngine, StreamParams, WindowConfig, DAY_SECS,
};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};

/// Shanghai anchor used across the repo's examples.
const ORIGIN: (f64, f64) = (121.4737, 31.2304);

/// One mined, geo-anchored artifact (same fixture as the pm-serve parity
/// suite, so the two suites pin the same serving stack).
fn artifact() -> &'static Artifact {
    static ART: OnceLock<Artifact> = OnceLock::new();
    ART.get_or_init(|| {
        let ds = pm_eval::Dataset::generate(&pm_synth::CityConfig::tiny(42));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let stays = stay_points_of(&ds.trajectories);
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        let recognized = recognize_all(&csd, ds.trajectories, &params).expect("recognize");
        let patterns = extract_patterns(&recognized, &params).expect("extract");
        let artifact =
            Artifact::new(csd, patterns, params).with_projection(GeoPoint::new(ORIGIN.0, ORIGIN.1));
        Artifact::from_bytes(&artifact.to_bytes()).expect("store round-trip")
    })
}

fn snapshot() -> Arc<Snapshot> {
    Arc::new(Snapshot::new(artifact().clone()).expect("snapshot"))
}

/// Two unit centers recognized as *distinct* primary categories (live
/// motif nodes are category-keyed, so identical categories would collapse
/// to one node), plus one far-away point the snapshot does not recognize —
/// unrecognized stays must not contribute motif nodes.
fn positions() -> [LocalPoint; 3] {
    let s = snapshot();
    let mut centers: Vec<LocalPoint> = Vec::new();
    let mut seen = Vec::new();
    for u in s.artifact().csd.units() {
        let Some(cat) = s.primary_category(u.center) else {
            continue;
        };
        if !seen.contains(&cat) {
            seen.push(cat);
            centers.push(u.center);
        }
        if centers.len() == 2 {
            break;
        }
    }
    assert!(
        centers.len() == 2,
        "fixture must yield two distinctly tagged units"
    );
    [centers[0], centers[1], LocalPoint::new(5.0e6, 5.0e6)]
}

/// TTL covering the transition window (required at shards > 1). Evictions
/// of quiet users *do* happen across day gaps — closing their pending day
/// graphs — which is exactly the cross-shard timing the parity property
/// must absorb.
fn engine_config() -> EngineConfig {
    EngineConfig {
        detector: StreamParams {
            theta_d: 100.0,
            theta_t: 300,
            max_pending: 64,
        },
        window: WindowConfig {
            window_secs: 86_400,
            bucket_secs: 3_600,
        },
        max_users: 1_000,
        user_ttl_secs: 86_400,
        max_stay_buffer: 10_000,
    }
}

fn recognizer() -> Recognizer {
    let snap = snapshot();
    Arc::new(move |pos| snap.primary_category(pos))
}

struct Running {
    addr: SocketAddr,
    handle: pm_serve::ShutdownHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn boot(shards: usize) -> Running {
    let (engine, _) = ShardedEngine::open(ShardConfig::new(shards, engine_config()), &recognizer())
        .expect("open sharded engine");
    let obs = Obs::enabled();
    let state = ServeState::with_engine(snapshot(), engine).with_obs(obs.clone());
    let server = Server::bind_with_state(
        "127.0.0.1:0",
        Arc::new(state),
        ServeConfig {
            max_requests_per_conn: usize::MAX,
            ..ServeConfig::default()
        },
        obs,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run());
    Running {
        addr,
        handle,
        thread,
    }
}

impl Running {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread").expect("run");
    }
}

/// One stay record: user id, landing spot, event time.
type Rec = (String, LocalPoint, i64);

/// Sends every batch on one keep-alive connection; all must be accepted.
fn send_all(addr: SocketAddr, batches: &[Vec<Rec>]) {
    let mut conn = client::Conn::open(addr).expect("connect");
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        let mut body = String::from("{\"stays\":[");
        for (i, (user, pos, t)) in batch.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let _ = write!(
                body,
                "{{\"user\":\"{user}\",\"x\":{},\"y\":{},\"t\":{t}}}",
                pos.x, pos.y
            );
        }
        body.push_str("]}");
        let (status, reply) = conn.post("/v1/ingest", &body).expect("ingest");
        assert_eq!(status, 200, "{reply}");
    }
}

fn live_motifs(addr: SocketAddr) -> String {
    let (status, body) = client::get(addr, "/v1/live/motifs").expect("live motifs");
    assert_eq!(status, 200, "{body}");
    body
}

/// A deterministic three-day stream for 5 users: day 0 closes as a 2-node
/// loop when day 1 begins, day 1 as a 1-node graph when day 2 begins, and
/// day 2 stays pending (invisible). Bodies must be byte-identical at
/// shards=1 and shards=8 — and across two consecutive reads of the same
/// server, which pins read-path determinism (no hidden draining).
#[test]
fn three_day_stream_is_shard_count_independent() {
    let [a, b, _] = positions();
    let mut batches: Vec<Vec<Rec>> = Vec::new();
    for d in 0..3i64 {
        for u in 0..5u8 {
            let user = format!("u{u}");
            let t0 = d * DAY_SECS + 1_000 + (u as i64) * 10;
            batches.push(match d {
                0 => vec![
                    (user.clone(), a, t0),
                    (user.clone(), b, t0 + 400),
                    (user, a, t0 + 800),
                ],
                1 => vec![(user, a, t0)],
                _ => vec![(user.clone(), b, t0), (user, a, t0 + 400)],
            });
        }
    }

    let one = boot(1);
    let many = boot(8);
    send_all(one.addr, &batches);
    send_all(many.addr, &batches);

    let body_one = live_motifs(one.addr);
    let body_many = live_motifs(many.addr);
    assert_eq!(body_one, body_many);
    // Reads are settled and non-draining: asking twice answers the same.
    assert_eq!(body_one, live_motifs(one.addr));
    assert_eq!(body_many, live_motifs(many.addr));

    // 5 users × 2 closed days each; day 2 is pending and invisible.
    assert!(body_one.contains("\"days_closed\":10"), "{body_one}");
    assert!(body_one.contains("\"total_days\":10"), "{body_one}");
    // Both closed shapes surface as classes: the a→b→a loop and the
    // single-visit day.
    assert_eq!(body_one.matches("\"id\":").count(), 2, "{body_one}");
    assert!(body_one.contains("\"nodes\":2"), "{body_one}");
    assert!(body_one.contains("\"nodes\":1"), "{body_one}");
    one.stop();
    many.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated streams with inter-record gaps up to ~half a day cross
    /// day boundaries (closing graphs eagerly) and TTL horizons (closing
    /// them via eviction on whatever shard the user landed on) — the
    /// merged live-motif body must still be byte-identical at 1 and 8
    /// shards.
    #[test]
    fn generated_streams_are_shard_count_independent(
        raw in prop::collection::vec((0u8..7, 0u8..3, 0u32..40_000), 1..60),
        batch_size in 1usize..9,
    ) {
        let spots = positions();
        let mut t = 1_000i64;
        let mut records: Vec<Rec> = Vec::with_capacity(raw.len());
        for &(user, cell, dt) in &raw {
            t += 1 + dt as i64;
            records.push((
                format!("user-{}", user % 7),
                spots[(cell % 3) as usize],
                t,
            ));
        }
        let batches: Vec<Vec<Rec>> = records
            .chunks(batch_size)
            .map(|c| c.to_vec())
            .collect();

        let one = boot(1);
        let many = boot(8);
        send_all(one.addr, &batches);
        send_all(many.addr, &batches);
        prop_assert_eq!(live_motifs(one.addr), live_motifs(many.addr));
        one.stop();
        many.stop();
    }
}
