//! Canonicalization coverage: permutation invariance over random digraphs
//! up to the node cap, and exhaustive verification at n <= 4 that the
//! canonical form is exactly the isomorphism class — distinct small graphs
//! never collide, relabeled ones always coincide.

use pm_motif::{canonical_form, form_edges, form_nodes, MAX_NODES};
use proptest::prelude::*;

/// Off-diagonal positions of the n x n adjacency block, in a fixed order.
fn edge_slots(n: usize) -> Vec<usize> {
    let mut slots = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                slots.push(i * 8 + j);
            }
        }
    }
    slots
}

/// Applies a node relabeling to an adjacency bit pattern (mirror of the
/// crate-internal remap, kept independent on purpose).
fn relabel(adj: u64, perm: &[u8]) -> u64 {
    let mut out = 0u64;
    let mut rest = adj;
    while rest != 0 {
        let idx = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        out |= 1u64 << ((perm[idx / 8] as usize) * 8 + perm[idx % 8] as usize);
    }
    out
}

/// Deterministic splitmix64 for seeding permutations from a drawn u64.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Fisher-Yates permutation of 0..n drawn from `seed`.
fn random_perm(n: usize, mut seed: u64) -> Vec<u8> {
    let mut perm: Vec<u8> = (0..n as u8).collect();
    for i in (1..n).rev() {
        let j = (splitmix(&mut seed) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A random adjacency over n nodes: the seed's low bits spread over the
/// off-diagonal slots.
fn random_adj(n: usize, seed: u64) -> u64 {
    let mut adj = 0u64;
    for (bit, slot) in edge_slots(n).iter().enumerate() {
        if seed & (1u64 << bit) != 0 {
            adj |= 1u64 << slot;
        }
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Any relabeling of any digraph up to the cap lands on the same
    /// canonical form, and the form's encoded node count survives.
    #[test]
    fn canonical_form_is_permutation_invariant(
        n in 1usize..=MAX_NODES,
        adj_seed in 0u64..u64::MAX,
        perm_seed in 0u64..u64::MAX,
    ) {
        let adj = random_adj(n, adj_seed);
        let perm = random_perm(n, perm_seed);
        let relabeled = relabel(adj, &perm);
        let a = canonical_form(n, adj);
        let b = canonical_form(n, relabeled);
        prop_assert_eq!(a, b, "perm {:?} changed the class", perm);
        prop_assert_eq!(form_nodes(a) as usize, n);
        prop_assert_eq!(form_edges(a) as u32, adj.count_ones());
    }
}

/// Exhaustive ground truth at n <= 4: every digraph, under every
/// relabeling, keeps its canonical form — and the number of distinct
/// forms per n equals the known count of unlabeled digraphs
/// (OEIS A000273: 1, 3, 16, 218), which rules out collisions between
/// non-isomorphic graphs as well as splits within a class.
#[test]
fn exhaustive_small_graphs_neither_collide_nor_split() {
    const UNLABELED_DIGRAPHS: [usize; 4] = [1, 3, 16, 218];

    /// All permutations of 0..n.
    fn perms(n: usize) -> Vec<Vec<u8>> {
        if n == 1 {
            return vec![vec![0]];
        }
        let mut out = Vec::new();
        for p in perms(n - 1) {
            for at in 0..n {
                let mut q: Vec<u8> = p.iter().map(|&v| v + 1).collect();
                q.insert(at, 0);
                out.push(q);
            }
        }
        out
    }

    let mut all_forms = std::collections::BTreeSet::new();
    let mut total = 0usize;
    for n in 1..=4usize {
        let slots = edge_slots(n);
        let perms = perms(n);
        let mut forms = std::collections::BTreeSet::new();
        for mask in 0u64..(1u64 << slots.len()) {
            let mut adj = 0u64;
            for (bit, slot) in slots.iter().enumerate() {
                if mask & (1u64 << bit) != 0 {
                    adj |= 1u64 << slot;
                }
            }
            let form = canonical_form(n, adj);
            for p in &perms {
                assert_eq!(
                    canonical_form(n, relabel(adj, p)),
                    form,
                    "n={n} adj={adj:#x} split under perm {p:?}"
                );
            }
            forms.insert(form);
            all_forms.insert(form);
        }
        assert_eq!(
            forms.len(),
            UNLABELED_DIGRAPHS[n - 1],
            "n={n}: canonical class count diverges from A000273"
        );
        total += forms.len();
    }
    // Forms from different node counts never collide either: the diagonal
    // marker keeps them disjoint.
    assert_eq!(all_forms.len(), total);
}
