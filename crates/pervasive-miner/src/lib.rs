//! **pervasive-miner** — the umbrella crate of the Pervasive Miner / City
//! Semantic Diagram stack.
//!
//! Re-exports the whole public API so applications depend on one crate:
//!
//! - [`geo`]: spatial substrate (projection, indexes, spatial statistics).
//! - [`cluster`]: DBSCAN, OPTICS, Mean Shift, K-Means.
//! - [`seqmine`]: PrefixSpan sequential pattern mining.
//! - [`core`]: the paper's contribution — CSD construction, semantic
//!   recognition, CounterpartCluster pattern extraction, metrics.
//! - [`synth`]: the synthetic Shanghai-like data substrate.
//! - [`baselines`]: the five competitor pipelines.
//! - [`eval`]: the experiment harness regenerating the paper's tables and
//!   figures.
//! - [`io`]: CSV ingestion/serialization for POI tables and journey logs,
//!   with strict and lenient (quarantining) modes.
//! - [`motif`]: daily mobility motifs — per-user-per-day transition graphs
//!   over semantic units, canonicalized and ranked by population share.
//! - [`cohort`]: per-user pattern embeddings, life-pattern cohort
//!   clustering, and k-anonymous similar-user search.
//! - [`obs`]: observability — stage spans, counters/gauges, and
//!   machine-readable run reports (see the CLI's `--report` flag).
//! - [`store`]: versioned, checksummed binary artifacts persisting a
//!   complete mining run (CSD + patterns).
//! - [`stream`]: online ingestion — the incremental stay-point detector and
//!   sliding-window transition engine behind the service's live endpoints.
//! - [`serve`]: the online HTTP query service over a stored artifact.
//!
//! See `examples/quickstart.rs` for the canonical end-to-end flow.

pub use pm_baselines as baselines;
pub use pm_cluster as cluster;
pub use pm_cohort as cohort;
pub use pm_core as core;
pub use pm_eval as eval;
pub use pm_geo as geo;
pub use pm_io as io;
pub use pm_motif as motif;
pub use pm_obs as obs;
pub use pm_seqmine as seqmine;
pub use pm_serve as serve;
pub use pm_store as store;
pub use pm_stream as stream;
pub use pm_synth as synth;

/// Convenience prelude: everything a pipeline application needs.
pub mod prelude {
    pub use pm_baselines::{BaselineParams, RoiRecognizer};
    pub use pm_core::prelude::*;
    pub use pm_eval::{Approach, Dataset, Recognized};
    pub use pm_geo::{GeoPoint, LocalPoint, Projection};
    pub use pm_obs::{Obs, RunReport};
    pub use pm_synth::{CityConfig, CityModel, TaxiCorpus};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let params = MinerParams::default();
        assert!(params.validate().is_ok());
        let cfg = CityConfig::tiny(0);
        assert!(cfg.validate().is_ok());
    }
}
