//! Point types: geodetic ([`GeoPoint`]) and local planar ([`LocalPoint`]).

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A WGS-84 coordinate pair in decimal degrees.
///
/// This is the raw form GPS devices and POI databases deliver (paper
/// Definitions 1 and 2: `p = (x, y)` with longitude and latitude).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Longitude in decimal degrees, east positive.
    pub lon: f64,
    /// Latitude in decimal degrees, north positive.
    pub lat: f64,
}

impl GeoPoint {
    /// Creates a geodetic point from longitude/latitude degrees.
    pub const fn new(lon: f64, lat: f64) -> Self {
        Self { lon, lat }
    }

    /// Returns true when both coordinates lie in the valid WGS-84 range.
    pub fn is_valid(&self) -> bool {
        self.lon.is_finite()
            && self.lat.is_finite()
            && (-180.0..=180.0).contains(&self.lon)
            && (-90.0..=90.0).contains(&self.lat)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lon, self.lat)
    }
}

/// A point in a flat local frame, in meters relative to a city reference
/// point (east = +x, north = +y).
///
/// Every distance threshold in the paper (`eps_p = 30 m`, `R_3sigma = 100 m`,
/// `d_v = 15 m`, ...) is metric, so the pipeline works in this frame and only
/// touches [`GeoPoint`] at the ingestion boundary via
/// [`Projection`](crate::Projection).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct LocalPoint {
    /// Meters east of the reference point.
    pub x: f64,
    /// Meters north of the reference point.
    pub y: f64,
}

impl LocalPoint {
    /// Creates a local point from meter offsets.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The local origin (the projection reference point).
    pub const ORIGIN: LocalPoint = LocalPoint { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`, in meters.
    pub fn distance(&self, other: &LocalPoint) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`, in square meters.
    ///
    /// Cheaper than [`LocalPoint::distance`]; prefer it for comparisons
    /// against a squared threshold in hot range-query loops.
    pub fn distance_sq(&self, other: &LocalPoint) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Squared Euclidean norm (distance to the origin).
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }
}

impl Add for LocalPoint {
    type Output = LocalPoint;
    fn add(self, rhs: LocalPoint) -> LocalPoint {
        LocalPoint::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for LocalPoint {
    type Output = LocalPoint;
    fn sub(self, rhs: LocalPoint) -> LocalPoint {
        LocalPoint::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for LocalPoint {
    type Output = LocalPoint;
    fn mul(self, rhs: f64) -> LocalPoint {
        LocalPoint::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for LocalPoint {
    type Output = LocalPoint;
    fn div(self, rhs: f64) -> LocalPoint {
        LocalPoint::new(self.x / rhs, self.y / rhs)
    }
}

impl fmt::Display for LocalPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}m, {:.2}m)", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_point_validity() {
        assert!(GeoPoint::new(121.47, 31.23).is_valid()); // Shanghai
        assert!(!GeoPoint::new(181.0, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, 91.0).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
    }

    #[test]
    fn local_distance_matches_pythagoras() {
        let a = LocalPoint::new(0.0, 0.0);
        let b = LocalPoint::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn local_distance_is_symmetric() {
        let a = LocalPoint::new(-12.5, 7.25);
        let b = LocalPoint::new(100.0, -3.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn local_arithmetic() {
        let a = LocalPoint::new(1.0, 2.0);
        let b = LocalPoint::new(3.0, -4.0);
        assert_eq!(a + b, LocalPoint::new(4.0, -2.0));
        assert_eq!(b - a, LocalPoint::new(2.0, -6.0));
        assert_eq!(a * 2.0, LocalPoint::new(2.0, 4.0));
        assert_eq!(b / 2.0, LocalPoint::new(1.5, -2.0));
    }

    #[test]
    fn zero_distance_to_self() {
        let p = LocalPoint::new(42.0, -17.0);
        assert_eq!(p.distance(&p), 0.0);
    }
}
