//! Great-circle geometry on the WGS-84 sphere approximation.

use crate::point::GeoPoint;

/// Mean Earth radius in meters (IUGG mean radius `R_1`).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Haversine (great-circle) distance between two geodetic points, in meters.
///
/// This is the `d(p_i, p_j)` used throughout the paper (Table 2). The
/// haversine formulation is numerically stable for the short, city-scale
/// distances the pipeline cares about, unlike the spherical law of cosines.
pub fn haversine_m(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();

    let s = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    // Clamp guards against s marginally exceeding 1.0 from rounding on
    // antipodal inputs.
    2.0 * EARTH_RADIUS_M * s.min(1.0).sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    // People's Square and Lujiazui, Shanghai: roughly 3.8 km apart.
    const PEOPLES_SQUARE: GeoPoint = GeoPoint::new(121.4737, 31.2304);
    const LUJIAZUI: GeoPoint = GeoPoint::new(121.5065, 31.2397);

    #[test]
    fn zero_for_identical_points() {
        assert_eq!(haversine_m(PEOPLES_SQUARE, PEOPLES_SQUARE), 0.0);
    }

    #[test]
    fn symmetric() {
        let d1 = haversine_m(PEOPLES_SQUARE, LUJIAZUI);
        let d2 = haversine_m(LUJIAZUI, PEOPLES_SQUARE);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn shanghai_landmarks_distance_plausible() {
        let d = haversine_m(PEOPLES_SQUARE, LUJIAZUI);
        assert!(
            (3000.0..4500.0).contains(&d),
            "expected ~3.8km, got {d:.0}m"
        );
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = GeoPoint::new(121.0, 31.0);
        let b = GeoPoint::new(121.0, 32.0);
        let d = haversine_m(a, b);
        assert!((d - 111_195.0).abs() < 500.0, "got {d:.0}m");
    }

    #[test]
    fn longitude_shrinks_with_latitude() {
        let eq = haversine_m(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 0.0));
        let mid = haversine_m(GeoPoint::new(0.0, 60.0), GeoPoint::new(1.0, 60.0));
        // cos(60 deg) = 0.5: a degree of longitude at 60N is half as long.
        assert!((mid / eq - 0.5).abs() < 0.01, "ratio {}", mid / eq);
    }

    #[test]
    fn antipodal_does_not_panic() {
        let d = haversine_m(GeoPoint::new(0.0, 0.0), GeoPoint::new(180.0, 0.0));
        let half_circumference = std::f64::consts::PI * EARTH_RADIUS_M;
        assert!((d - half_circumference).abs() < 1.0);
    }
}
