//! A static STR-packed R-tree over local points.
//!
//! The grid index wins for fixed-radius disks over uniformly dense data;
//! the R-tree complements it for rectangle queries and for point sets with
//! wildly varying density (a city's venue blobs + empty periphery), where a
//! uniform grid wastes cells. Built once by Sort-Tile-Recursive packing;
//! immutable thereafter.

use crate::bbox::BoundingBox;
use crate::point::LocalPoint;

/// Maximum entries per node.
const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
struct Node {
    bbox: BoundingBox,
    /// Children: `Leaf` holds point indices, `Inner` holds node indices.
    children: Children,
}

#[derive(Debug, Clone)]
enum Children {
    Leaf(Vec<u32>),
    Inner(Vec<u32>),
}

/// A static R-tree packed with the Sort-Tile-Recursive algorithm.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: Option<u32>,
    points: Vec<LocalPoint>,
}

impl RTree {
    /// Builds the tree over `points`.
    pub fn build(points: &[LocalPoint]) -> RTree {
        let mut tree = RTree {
            nodes: Vec::new(),
            root: None,
            points: points.to_vec(),
        };
        if points.is_empty() {
            return tree;
        }

        // Leaf level: STR packing. Sort by x, slice into vertical strips of
        // ~sqrt(n/capacity) tiles, sort each strip by y, chunk into leaves.
        let n = points.len();
        let n_leaves = n.div_ceil(NODE_CAPACITY);
        let n_strips = (n_leaves as f64).sqrt().ceil() as usize;
        let strip_size = n.div_ceil(n_strips);

        let mut idxs: Vec<u32> = (0..n as u32).collect();
        idxs.sort_by(|&a, &b| points[a as usize].x.total_cmp(&points[b as usize].x));

        let mut level: Vec<u32> = Vec::new(); // node ids of current level
        for strip in idxs.chunks(strip_size) {
            let mut strip = strip.to_vec();
            strip.sort_by(|&a, &b| points[a as usize].y.total_cmp(&points[b as usize].y));
            for leaf in strip.chunks(NODE_CAPACITY) {
                let pts: Vec<LocalPoint> = leaf.iter().map(|&i| points[i as usize]).collect();
                let bbox = BoundingBox::enclosing(&pts).expect("non-empty leaf");
                tree.nodes.push(Node {
                    bbox,
                    children: Children::Leaf(leaf.to_vec()),
                });
                level.push(tree.nodes.len() as u32 - 1);
            }
        }

        // Pack upper levels until a single root remains.
        while level.len() > 1 {
            let mut next = Vec::new();
            for group in level.chunks(NODE_CAPACITY) {
                let mut bbox = tree.nodes[group[0] as usize].bbox;
                for &nid in &group[1..] {
                    let b = tree.nodes[nid as usize].bbox;
                    bbox.expand(b.min);
                    bbox.expand(b.max);
                }
                tree.nodes.push(Node {
                    bbox,
                    children: Children::Inner(group.to_vec()),
                });
                next.push(tree.nodes.len() as u32 - 1);
            }
            level = next;
        }
        tree.root = Some(level[0]);
        tree
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points inside `query` (boundary inclusive).
    pub fn query_rect(&self, query: &BoundingBox) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.query_rec(root, query, &mut out);
        }
        out
    }

    fn query_rec(&self, node: u32, query: &BoundingBox, out: &mut Vec<usize>) {
        let node = &self.nodes[node as usize];
        if !node.bbox.intersects(query) {
            return;
        }
        match &node.children {
            Children::Leaf(pts) => {
                for &i in pts {
                    if query.contains(self.points[i as usize]) {
                        out.push(i as usize);
                    }
                }
            }
            Children::Inner(kids) => {
                for &k in kids {
                    self.query_rec(k, query, out);
                }
            }
        }
    }

    /// Indices of all points within `radius` of `center` (inclusive) —
    /// rectangle pre-filter plus an exact distance check.
    pub fn query_circle(&self, center: LocalPoint, radius: f64) -> Vec<usize> {
        if radius.is_nan() || radius < 0.0 {
            return Vec::new();
        }
        let rect = BoundingBox::new(
            LocalPoint::new(center.x - radius, center.y - radius),
            LocalPoint::new(center.x + radius, center.y + radius),
        );
        let r_sq = radius * radius;
        self.query_rect(&rect)
            .into_iter()
            .filter(|&i| self.points[i].distance_sq(&center) <= r_sq)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> Vec<LocalPoint> {
        (0..n)
            .map(|i| LocalPoint::new((i % 17) as f64 * 13.0, (i / 17) as f64 * 7.0))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::build(&[]);
        assert!(t.is_empty());
        let bb = BoundingBox::new(LocalPoint::new(-1.0, -1.0), LocalPoint::new(1.0, 1.0));
        assert!(t.query_rect(&bb).is_empty());
        assert!(t.query_circle(LocalPoint::ORIGIN, 100.0).is_empty());
    }

    #[test]
    fn rect_query_matches_brute_force() {
        let pts = lattice(300);
        let t = RTree::build(&pts);
        for (ax, ay, bx, by) in [
            (0.0, 0.0, 50.0, 30.0),
            (-10.0, -10.0, 500.0, 500.0),
            (100.0, 40.0, 130.0, 60.0),
        ] {
            let bb = BoundingBox::new(LocalPoint::new(ax, ay), LocalPoint::new(bx, by));
            let mut got = t.query_rect(&bb);
            got.sort_unstable();
            let want: Vec<usize> = (0..pts.len()).filter(|&i| bb.contains(pts[i])).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn circle_query_matches_brute_force() {
        let pts = lattice(250);
        let t = RTree::build(&pts);
        let c = LocalPoint::new(60.0, 40.0);
        for r in [0.0, 10.0, 55.5, 400.0] {
            let mut got = t.query_circle(c, r);
            got.sort_unstable();
            let want: Vec<usize> = (0..pts.len())
                .filter(|&i| pts[i].distance(&c) <= r)
                .collect();
            assert_eq!(got, want, "radius {r}");
        }
    }

    #[test]
    fn single_point_and_duplicates() {
        let p = LocalPoint::new(3.0, 4.0);
        let t = RTree::build(&[p, p, p]);
        assert_eq!(t.query_circle(p, 0.0).len(), 3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let t = RTree::build(&lattice(100));
        let far = BoundingBox::new(LocalPoint::new(1e6, 1e6), LocalPoint::new(2e6, 2e6));
        assert!(t.query_rect(&far).is_empty());
    }

    #[test]
    fn handles_skewed_density() {
        // Dense blob + far-away outliers: tree must stay correct.
        let mut pts = lattice(200);
        pts.push(LocalPoint::new(1e5, 1e5));
        pts.push(LocalPoint::new(-1e5, 3.0));
        let t = RTree::build(&pts);
        let got = t.query_circle(LocalPoint::new(1e5, 1e5), 1.0);
        assert_eq!(got, vec![200]);
    }
}
