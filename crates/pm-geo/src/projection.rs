//! Equirectangular projection between geodetic and local meter coordinates.

use crate::geodesy::EARTH_RADIUS_M;
use crate::point::{GeoPoint, LocalPoint};

/// A local tangent-plane projection anchored at a city reference point.
///
/// The projection is equirectangular: meters east scale with the cosine of
/// the reference latitude. At city scale (tens of kilometers) the distortion
/// versus true geodesics is far below GPS noise (< 0.1% at 50 km from the
/// anchor), which is why this is the standard frame for urban trajectory
/// mining.
#[derive(Clone, Copy, Debug)]
pub struct Projection {
    origin: GeoPoint,
    /// Meters per degree of longitude at the reference latitude.
    m_per_deg_lon: f64,
    /// Meters per degree of latitude.
    m_per_deg_lat: f64,
}

impl Projection {
    /// Creates a projection anchored at `origin`.
    ///
    /// # Panics
    /// Panics if `origin` is not a valid WGS-84 coordinate or sits at a pole
    /// (where east-west scale degenerates).
    pub fn new(origin: GeoPoint) -> Self {
        assert!(
            origin.is_valid(),
            "projection origin must be valid: {origin}"
        );
        assert!(
            origin.lat.abs() < 89.0,
            "projection origin too close to a pole: {origin}"
        );
        let m_per_deg = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        Self {
            origin,
            m_per_deg_lon: m_per_deg * origin.lat.to_radians().cos(),
            m_per_deg_lat: m_per_deg,
        }
    }

    /// The geodetic anchor this projection is centred on.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geodetic point into the local meter frame.
    pub fn to_local(&self, p: GeoPoint) -> LocalPoint {
        LocalPoint::new(
            (p.lon - self.origin.lon) * self.m_per_deg_lon,
            (p.lat - self.origin.lat) * self.m_per_deg_lat,
        )
    }

    /// Inverse projection from the local frame back to geodetic coordinates.
    pub fn to_geo(&self, p: LocalPoint) -> GeoPoint {
        GeoPoint::new(
            self.origin.lon + p.x / self.m_per_deg_lon,
            self.origin.lat + p.y / self.m_per_deg_lat,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geodesy::haversine_m;

    const SHANGHAI: GeoPoint = GeoPoint::new(121.4737, 31.2304);

    #[test]
    fn roundtrip_is_exact_at_origin() {
        let proj = Projection::new(SHANGHAI);
        let local = proj.to_local(SHANGHAI);
        assert!(local.distance(&LocalPoint::ORIGIN) < 1e-9);
        let back = proj.to_geo(local);
        assert!((back.lon - SHANGHAI.lon).abs() < 1e-12);
        assert!((back.lat - SHANGHAI.lat).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_recovers_arbitrary_point() {
        let proj = Projection::new(SHANGHAI);
        let p = GeoPoint::new(121.60, 31.10);
        let back = proj.to_geo(proj.to_local(p));
        assert!((back.lon - p.lon).abs() < 1e-10);
        assert!((back.lat - p.lat).abs() < 1e-10);
    }

    #[test]
    fn local_distance_matches_haversine_at_city_scale() {
        let proj = Projection::new(SHANGHAI);
        let a = GeoPoint::new(121.48, 31.24);
        let b = GeoPoint::new(121.52, 31.20);
        let planar = proj.to_local(a).distance(&proj.to_local(b));
        let sphere = haversine_m(a, b);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn east_is_positive_x_north_is_positive_y() {
        let proj = Projection::new(SHANGHAI);
        let east = proj.to_local(GeoPoint::new(SHANGHAI.lon + 0.01, SHANGHAI.lat));
        let north = proj.to_local(GeoPoint::new(SHANGHAI.lon, SHANGHAI.lat + 0.01));
        assert!(east.x > 0.0 && east.y.abs() < 1e-9);
        assert!(north.y > 0.0 && north.x.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn rejects_polar_origin() {
        let _ = Projection::new(GeoPoint::new(0.0, 89.5));
    }
}
