//! Struct-of-arrays point storage for hot distance kernels.
//!
//! The clustering sweeps (OPTICS, DBSCAN, CounterpartCluster) spend their
//! time computing distances from one probe point to a list of candidate
//! neighbours. [`SoaPoints`] keeps the coordinates in two parallel `Vec<f64>`
//! columns so those kernels read contiguous lanes instead of interleaved
//! `{x, y}` pairs, and [`SoaPoints::dist_sq_many`] batches the whole
//! candidate list through one allocation-free squared-distance loop — no
//! `sqrt` anywhere; callers compare against squared thresholds and only take
//! the root where an output contract requires a real distance.

use crate::point::LocalPoint;

/// Points stored column-wise (`xs`/`ys`) for cache-friendly distance sweeps.
#[derive(Debug, Clone, Default)]
pub struct SoaPoints {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl SoaPoints {
    /// Builds the columnar copy of `points`.
    pub fn from_points(points: &[LocalPoint]) -> Self {
        Self {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
        }
    }

    /// Re-fills the columns from `points`, reusing the existing allocations.
    pub fn refill(&mut self, points: &[LocalPoint]) {
        self.xs.clear();
        self.ys.clear();
        self.xs.extend(points.iter().map(|p| p.x));
        self.ys.extend(points.iter().map(|p| p.y));
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether no points are stored.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The stored point at `i`.
    pub fn get(&self, i: usize) -> LocalPoint {
        LocalPoint::new(self.xs[i], self.ys[i])
    }

    /// Squared distance from stored point `i` to `p`, in square meters.
    ///
    /// Bit-identical to `self.get(i).distance_sq(&p)`.
    pub fn dist_sq_to(&self, i: usize, p: LocalPoint) -> f64 {
        let dx = self.xs[i] - p.x;
        let dy = self.ys[i] - p.y;
        dx * dx + dy * dy
    }

    /// Squared distances from `center` to every stored point listed in
    /// `idxs`, written into `out` (cleared first) so `out[k]` aligns with
    /// `idxs[k]`. One tight loop, no allocation beyond `out`'s capacity
    /// growth, no `sqrt`.
    pub fn dist_sq_many(&self, center: LocalPoint, idxs: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(idxs.len());
        let (xs, ys) = (&self.xs[..], &self.ys[..]);
        out.extend(idxs.iter().map(|&i| {
            let dx = xs[i] - center.x;
            let dy = ys[i] - center.y;
            dx * dx + dy * dy
        }));
    }

    /// Squared distances from `center` to *every* stored point, in storage
    /// order, written into `out` (cleared first).
    ///
    /// Unlike [`SoaPoints::dist_sq_many`] there is no index gather: the loop
    /// walks both columns sequentially, which the compiler vectorizes. This
    /// is the kernel behind the dense-sweep path of OPTICS, where a range
    /// query would return (nearly) all points anyway and a spatial index
    /// only adds indirection.
    pub fn dist_sq_all(&self, center: LocalPoint, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.xs.len());
        let (xs, ys) = (&self.xs[..], &self.ys[..]);
        out.extend(xs.iter().zip(ys.iter()).map(|(&x, &y)| {
            let dx = x - center.x;
            let dy = y - center.y;
            dx * dx + dy * dy
        }));
    }

    /// The raw coordinate columns `(xs, ys)`, for callers that fuse the
    /// distance computation with their own per-element logic in a single
    /// sequential pass (e.g. OPTICS folds its core-distance candidate
    /// gather into the distance loop).
    pub fn cols(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// Axis-aligned bounding box of the stored points as
    /// `(min_x, min_y, max_x, max_y)`; `None` when empty. `O(n)`.
    pub fn bbox(&self) -> Option<(f64, f64, f64, f64)> {
        if self.xs.is_empty() {
            return None;
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &self.xs {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
        }
        for &y in &self.ys {
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        Some((min_x, min_y, max_x, max_y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_points() {
        let pts = vec![LocalPoint::new(1.5, -2.0), LocalPoint::new(0.0, 7.25)];
        let soa = SoaPoints::from_points(&pts);
        assert_eq!(soa.len(), 2);
        assert!(!soa.is_empty());
        assert_eq!(soa.get(0), pts[0]);
        assert_eq!(soa.get(1), pts[1]);
        assert!(SoaPoints::from_points(&[]).is_empty());
    }

    #[test]
    fn dist_sq_matches_aos_bitwise() {
        let pts: Vec<LocalPoint> = (0..50)
            .map(|i| LocalPoint::new((i as f64 * 0.37).sin() * 1e4, (i as f64 * 1.13).cos() * 1e4))
            .collect();
        let soa = SoaPoints::from_points(&pts);
        let center = LocalPoint::new(123.456, -789.1);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(
                soa.dist_sq_to(i, center).to_bits(),
                p.distance_sq(&center).to_bits()
            );
        }
        let idxs: Vec<usize> = (0..pts.len()).rev().collect();
        let mut out = vec![f64::NAN; 3]; // stale content must be cleared
        soa.dist_sq_many(center, &idxs, &mut out);
        assert_eq!(out.len(), idxs.len());
        for (k, &i) in idxs.iter().enumerate() {
            assert_eq!(out[k].to_bits(), pts[i].distance_sq(&center).to_bits());
        }

        let mut all = vec![f64::NAN; 2];
        soa.dist_sq_all(center, &mut all);
        assert_eq!(all.len(), pts.len());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(all[i].to_bits(), p.distance_sq(&center).to_bits());
        }

        let (xs, ys) = soa.cols();
        assert_eq!(xs.len(), pts.len());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!((xs[i], ys[i]), (p.x, p.y));
        }
    }

    #[test]
    fn bbox_spans_all_points() {
        assert!(SoaPoints::default().bbox().is_none());
        let pts = vec![
            LocalPoint::new(-3.0, 8.0),
            LocalPoint::new(12.5, -1.0),
            LocalPoint::new(4.0, 2.0),
        ];
        let soa = SoaPoints::from_points(&pts);
        assert_eq!(soa.bbox(), Some((-3.0, -1.0, 12.5, 8.0)));
    }

    #[test]
    fn refill_reuses_capacity() {
        let mut soa = SoaPoints::from_points(&[LocalPoint::ORIGIN; 64]);
        let cap = 64;
        soa.refill(&[LocalPoint::new(2.0, 3.0); 8]);
        assert_eq!(soa.len(), 8);
        assert_eq!(soa.get(7), LocalPoint::new(2.0, 3.0));
        assert!(soa.xs.capacity() >= cap, "refill must not shrink capacity");
    }
}
