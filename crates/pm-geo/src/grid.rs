//! Uniform bucket-grid spatial index for circular range queries.

use crate::point::LocalPoint;

/// A uniform grid over local points supporting the `range(p, eps, P)` query
/// the paper uses in Algorithms 1 and 3.
///
/// Points are hashed into square cells of a fixed size; a circular query
/// inspects only the cells overlapping the query disk. With a cell size close
/// to the typical query radius (`eps_p = 30 m` for clustering, `R_3sigma =
/// 100 m` for recognition), a query touches at most nine cells.
///
/// The index stores `usize` handles into the point slice it was built from;
/// callers keep ownership of the actual payloads.
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// Effective cell size: the requested size, possibly inflated by the
    /// memory cap in [`GridIndex::build`]. Queries remain exact either way.
    cell_size: f64,
    /// The cell size the caller asked for, before any inflation.
    requested_cell_size: f64,
    min_x: f64,
    min_y: f64,
    cols: usize,
    rows: usize,
    /// CSR-style layout: `starts[c]..starts[c+1]` indexes into `entries` for
    /// cell `c`. Flat layout beats per-cell `Vec`s on cache behaviour.
    starts: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<LocalPoint>,
}

impl GridIndex {
    /// Builds an index over `points` with the given cell size in meters.
    ///
    /// The cell size is treated as a request, not a guarantee: to bound
    /// memory, the grid is capped at ~4 cells per point, which can silently
    /// inflate tiny cells over a large extent (see the guard below).
    /// [`GridIndex::cell_size`] reports the size actually in effect, and
    /// every query stays exact regardless — [`GridIndex::range_into`] scans
    /// the full cell span covering the query disk, so radii larger *or*
    /// smaller than the effective cell size return the same point sets a
    /// brute-force scan would.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn build(points: &[LocalPoint], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive, got {cell_size}"
        );
        let requested_cell_size = cell_size;
        if points.is_empty() {
            return Self {
                cell_size,
                requested_cell_size,
                min_x: 0.0,
                min_y: 0.0,
                cols: 0,
                rows: 0,
                starts: vec![0],
                entries: Vec::new(),
                points: Vec::new(),
            };
        }

        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        // Guard against degenerate cell sizes: cap the grid at ~4 cells per
        // point (beyond that, smaller cells cannot speed queries up, they
        // only burn memory — a 1e-9 cell over a city extent would otherwise
        // allocate terabytes).
        let extent = (max_x - min_x).max(max_y - min_y).max(cell_size);
        let max_cells_per_axis = ((4 * points.len()) as f64).sqrt().ceil().max(1.0);
        let cell_size = cell_size.max(extent / max_cells_per_axis);
        let cols = ((max_x - min_x) / cell_size).floor() as usize + 1;
        let rows = ((max_y - min_y) / cell_size).floor() as usize + 1;
        let n_cells = cols * rows;

        // Counting sort of points into cells.
        let mut counts = vec![0u32; n_cells + 1];
        let cell_of = |p: &LocalPoint| -> usize {
            let cx = ((p.x - min_x) / cell_size) as usize;
            let cy = ((p.y - min_y) / cell_size) as usize;
            cy.min(rows - 1) * cols + cx.min(cols - 1)
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut entries = vec![0u32; points.len()];
        let mut cursor = starts.clone();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        Self {
            cell_size,
            requested_cell_size,
            min_x,
            min_y,
            cols,
            rows,
            starts,
            entries,
            points: points.to_vec(),
        }
    }

    /// The cell size actually in effect, in meters.
    ///
    /// Equals the requested size unless the ~4-cells-per-point memory cap
    /// inflated it (tiny cells over a city-scale extent). Callers sizing
    /// query radii against the grid should consult this, not the value they
    /// passed to [`GridIndex::build`].
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The cell size the caller requested at build time, in meters.
    pub fn requested_cell_size(&self) -> f64 {
        self.requested_cell_size
    }

    /// Whether the memory cap overrode the requested cell size.
    pub fn cell_size_inflated(&self) -> bool {
        self.cell_size > self.requested_cell_size
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The stored coordinates of point `idx`.
    pub fn point(&self, idx: usize) -> LocalPoint {
        self.points[idx]
    }

    /// Indices of all points within `radius` meters of `center` (inclusive).
    pub fn range(&self, center: LocalPoint, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.range_into(center, radius, &mut out);
        out
    }

    /// Like [`GridIndex::range`], appending into a caller-provided buffer to
    /// avoid per-query allocation in hot loops. The buffer is cleared first.
    pub fn range_into(&self, center: LocalPoint, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        if self.points.is_empty() || radius.is_nan() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let cx_lo = (((center.x - radius - self.min_x) / self.cell_size).floor()).max(0.0) as usize;
        let cy_lo = (((center.y - radius - self.min_y) / self.cell_size).floor()).max(0.0) as usize;
        let cx_hi = ((((center.x + radius - self.min_x) / self.cell_size).floor()) as isize).max(0)
            as usize;
        let cy_hi = ((((center.y + radius - self.min_y) / self.cell_size).floor()) as isize).max(0)
            as usize;
        if cx_lo >= self.cols || cy_lo >= self.rows {
            return;
        }
        let cx_hi = cx_hi.min(self.cols - 1);
        let cy_hi = cy_hi.min(self.rows - 1);

        for cy in cy_lo..=cy_hi {
            for cx in cx_lo..=cx_hi {
                let c = cy * self.cols + cx;
                let (s, e) = (self.starts[c] as usize, self.starts[c + 1] as usize);
                for &idx in &self.entries[s..e] {
                    if self.points[idx as usize].distance_sq(&center) <= r_sq {
                        out.push(idx as usize);
                    }
                }
            }
        }
    }

    /// Number of points within `radius` of `center` without materializing
    /// the index list.
    pub fn count_in_range(&self, center: LocalPoint, radius: f64) -> usize {
        if self.points.is_empty() || radius.is_nan() || radius < 0.0 {
            return 0;
        }
        let r_sq = radius * radius;
        let cx_lo = (((center.x - radius - self.min_x) / self.cell_size).floor()).max(0.0) as usize;
        let cy_lo = (((center.y - radius - self.min_y) / self.cell_size).floor()).max(0.0) as usize;
        let cx_hi = ((((center.x + radius - self.min_x) / self.cell_size).floor()) as isize).max(0)
            as usize;
        let cy_hi = ((((center.y + radius - self.min_y) / self.cell_size).floor()) as isize).max(0)
            as usize;
        if cx_lo >= self.cols || cy_lo >= self.rows {
            return 0;
        }
        let cx_hi = cx_hi.min(self.cols - 1);
        let cy_hi = cy_hi.min(self.rows - 1);

        let mut n = 0;
        for cy in cy_lo..=cy_hi {
            for cx in cx_lo..=cx_hi {
                let c = cy * self.cols + cx;
                let (s, e) = (self.starts[c] as usize, self.starts[c + 1] as usize);
                n += self.entries[s..e]
                    .iter()
                    .filter(|&&idx| self.points[idx as usize].distance_sq(&center) <= r_sq)
                    .count();
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(points: &[LocalPoint], center: LocalPoint, radius: f64) -> Vec<usize> {
        let r_sq = radius * radius;
        (0..points.len())
            .filter(|&i| points[i].distance_sq(&center) <= r_sq)
            .collect()
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(&[], 10.0);
        assert!(idx.is_empty());
        assert!(idx.range(LocalPoint::ORIGIN, 100.0).is_empty());
        assert_eq!(idx.count_in_range(LocalPoint::ORIGIN, 100.0), 0);
    }

    #[test]
    fn single_point() {
        let idx = GridIndex::build(&[LocalPoint::new(5.0, 5.0)], 10.0);
        assert_eq!(idx.range(LocalPoint::new(5.0, 5.0), 0.0), vec![0]);
        assert_eq!(idx.range(LocalPoint::new(6.0, 5.0), 1.0), vec![0]);
        assert!(idx.range(LocalPoint::new(6.0, 5.0), 0.5).is_empty());
    }

    #[test]
    fn matches_brute_force_on_lattice() {
        let points: Vec<LocalPoint> = (0..20)
            .flat_map(|x| (0..20).map(move |y| LocalPoint::new(x as f64 * 7.3, y as f64 * 4.1)))
            .collect();
        let idx = GridIndex::build(&points, 13.0);
        for (cx, cy, r) in [(0.0, 0.0, 25.0), (70.0, 40.0, 11.5), (150.0, 80.0, 60.0)] {
            let center = LocalPoint::new(cx, cy);
            let mut got = idx.range(center, r);
            got.sort_unstable();
            let want = brute_force(&points, center, r);
            assert_eq!(got, want, "query ({cx},{cy}) r={r}");
            assert_eq!(idx.count_in_range(center, r), want.len());
        }
    }

    #[test]
    fn boundary_is_inclusive() {
        let points = vec![LocalPoint::new(0.0, 0.0), LocalPoint::new(10.0, 0.0)];
        let idx = GridIndex::build(&points, 5.0);
        let mut got = idx.range(LocalPoint::ORIGIN, 10.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn query_far_outside_extent() {
        let points = vec![LocalPoint::new(0.0, 0.0), LocalPoint::new(1.0, 1.0)];
        let idx = GridIndex::build(&points, 10.0);
        assert!(idx.range(LocalPoint::new(1e6, 1e6), 5.0).is_empty());
        assert!(idx.range(LocalPoint::new(-1e6, -1e6), 5.0).is_empty());
        // A huge radius from far away still finds everything.
        assert_eq!(idx.range(LocalPoint::new(-1e3, 0.0), 2e3).len(), 2);
    }

    #[test]
    fn duplicate_points_all_returned() {
        let p = LocalPoint::new(3.0, 3.0);
        let idx = GridIndex::build(&[p, p, p], 10.0);
        assert_eq!(idx.range(p, 0.1).len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_cell_size() {
        let _ = GridIndex::build(&[LocalPoint::ORIGIN], 0.0);
    }

    #[test]
    fn tiny_cell_over_city_extent_is_inflated_but_exact() {
        // 64 points spread over ~10 km with a 1e-6 m requested cell: the
        // memory cap must inflate the effective cell size (a faithful grid
        // would need ~1e20 cells) and queries — including radii far larger
        // than the effective cell — must still match brute force.
        let points: Vec<LocalPoint> = (0..64)
            .map(|i| {
                LocalPoint::new(
                    (i % 8) as f64 * 1_400.0 + (i as f64 * 13.7) % 900.0,
                    (i / 8) as f64 * 1_300.0 + (i as f64 * 7.3) % 800.0,
                )
            })
            .collect();
        let idx = GridIndex::build(&points, 1e-6);
        assert_eq!(idx.requested_cell_size(), 1e-6);
        assert!(idx.cell_size_inflated());
        assert!(idx.cell_size() > 1e-6, "cap must inflate the cell");

        for r in [0.5, 50.0, idx.cell_size() * 3.0, 12_000.0] {
            for center in [
                LocalPoint::ORIGIN,
                LocalPoint::new(5_000.0, 4_000.0),
                LocalPoint::new(9_900.0, 9_100.0),
            ] {
                let mut got = idx.range(center, r);
                got.sort_unstable();
                assert_eq!(got, brute_force(&points, center, r), "r = {r}");
                assert_eq!(idx.count_in_range(center, r), got.len());
            }
        }
    }

    #[test]
    fn near_zero_cell_on_coincident_clusters_is_exact() {
        // A denormal-adjacent cell request (1e-300 m) over clustered data
        // with coincident points: the build must stay bounded (memory cap)
        // and every query must still be exact at the *requested* radius —
        // including radius 0, which matches exactly the coincident copies.
        let venue = LocalPoint::new(250.0, -80.0);
        let mut points = vec![venue; 6];
        for i in 0..40 {
            points.push(LocalPoint::new(
                (i % 8) as f64 * 30.0,
                (i / 8) as f64 * 25.0,
            ));
        }
        let idx = GridIndex::build(&points, 1e-300);
        assert_eq!(idx.requested_cell_size(), 1e-300);
        assert!(idx.cell_size_inflated());

        let mut got = idx.range(venue, 0.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5], "coincident copies at r = 0");
        for r in [0.0, 1.0, 40.0, 500.0] {
            for center in [venue, LocalPoint::ORIGIN, LocalPoint::new(105.0, 60.0)] {
                let mut got = idx.range(center, r);
                got.sort_unstable();
                assert_eq!(got, brute_force(&points, center, r), "r = {r}");
                assert_eq!(idx.count_in_range(center, r), got.len());
            }
        }
    }

    #[test]
    fn generous_cell_size_is_not_inflated() {
        // 100 points over a ~30m extent with 30m cells: the ~4-cells-per-
        // point cap (20 cells per axis here) is far from binding.
        let points: Vec<LocalPoint> = (0..100)
            .map(|i| LocalPoint::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0))
            .collect();
        let idx = GridIndex::build(&points, 30.0);
        assert_eq!(idx.cell_size(), 30.0);
        assert_eq!(idx.requested_cell_size(), 30.0);
        assert!(!idx.cell_size_inflated());
    }

    #[test]
    fn radius_larger_than_cell_size_scans_full_span() {
        // Dense points, small cells: a query radius spanning many cells must
        // return everything in the disk.
        let points: Vec<LocalPoint> = (0..100)
            .map(|i| LocalPoint::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0))
            .collect();
        let idx = GridIndex::build(&points, 2.0);
        let center = LocalPoint::new(13.0, 13.0);
        let mut got = idx.range(center, 11.0);
        got.sort_unstable();
        assert_eq!(got, brute_force(&points, center, 11.0));
    }
}
