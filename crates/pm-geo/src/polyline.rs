//! Polyline geometry: length, interpolation and resampling of point
//! sequences — the raw-trajectory manipulation layer under GPS track
//! generation and map rendering.

use crate::point::LocalPoint;

/// Total length of a polyline in meters (0 for fewer than two points).
pub fn length(points: &[LocalPoint]) -> f64 {
    points.windows(2).map(|w| w[0].distance(&w[1])).sum()
}

/// The point at parameter `t in [0, 1]` along the polyline by arc length.
/// Clamps `t`; returns `None` for an empty polyline.
pub fn point_at(points: &[LocalPoint], t: f64) -> Option<LocalPoint> {
    let first = *points.first()?;
    if points.len() == 1 {
        return Some(first);
    }
    let total = length(points);
    if total <= 0.0 {
        return Some(first);
    }
    let target = total * t.clamp(0.0, 1.0);
    let mut walked = 0.0;
    for w in points.windows(2) {
        let seg = w[0].distance(&w[1]);
        if walked + seg >= target {
            if seg <= 0.0 {
                return Some(w[0]);
            }
            let f = (target - walked) / seg;
            return Some(w[0] + (w[1] - w[0]) * f);
        }
        walked += seg;
    }
    Some(*points.last().expect("non-empty"))
}

/// Resamples the polyline into `n` points equally spaced by arc length
/// (endpoints included). Returns the input for `n < 2` or degenerate lines.
pub fn resample(points: &[LocalPoint], n: usize) -> Vec<LocalPoint> {
    if points.len() < 2 || n < 2 {
        return points.to_vec();
    }
    (0..n)
        .map(|i| point_at(points, i as f64 / (n - 1) as f64).expect("non-empty by the guard above"))
        .collect()
}

/// Minimum distance from `p` to the polyline (segment-wise point-to-segment
/// distance). Returns infinity for an empty polyline.
pub fn distance_to(points: &[LocalPoint], p: LocalPoint) -> f64 {
    if points.is_empty() {
        return f64::INFINITY;
    }
    if points.len() == 1 {
        return points[0].distance(&p);
    }
    points
        .windows(2)
        .map(|w| point_segment_distance(p, w[0], w[1]))
        .fold(f64::INFINITY, f64::min)
}

/// Distance from a point to a segment `[a, b]`.
pub fn point_segment_distance(p: LocalPoint, a: LocalPoint, b: LocalPoint) -> f64 {
    let ab = b - a;
    let len_sq = ab.norm_sq();
    if len_sq <= 0.0 {
        return p.distance(&a);
    }
    let t = (((p.x - a.x) * ab.x + (p.y - a.y) * ab.y) / len_sq).clamp(0.0, 1.0);
    p.distance(&(a + ab * t))
}

/// Douglas–Peucker simplification: keeps the endpoints and every vertex
/// farther than `epsilon` meters from the simplified chain.
pub fn simplify(points: &[LocalPoint], epsilon: f64) -> Vec<LocalPoint> {
    if points.len() <= 2 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    dp_rec(points, 0, points.len() - 1, epsilon, &mut keep);
    points
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| *p)
        .collect()
}

fn dp_rec(points: &[LocalPoint], lo: usize, hi: usize, epsilon: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let (mut worst, mut worst_d) = (lo, -1.0);
    for i in lo + 1..hi {
        let d = point_segment_distance(points[i], points[lo], points[hi]);
        if d > worst_d {
            worst = i;
            worst_d = d;
        }
    }
    if worst_d > epsilon {
        keep[worst] = true;
        dp_rec(points, lo, worst, epsilon, keep);
        dp_rec(points, worst, hi, epsilon, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: f64, y: f64) -> LocalPoint {
        LocalPoint::new(x, y)
    }

    #[test]
    fn length_of_l_shape() {
        let line = vec![l(0.0, 0.0), l(3.0, 0.0), l(3.0, 4.0)];
        assert!((length(&line) - 7.0).abs() < 1e-12);
        assert_eq!(length(&[l(1.0, 1.0)]), 0.0);
        assert_eq!(length(&[]), 0.0);
    }

    #[test]
    fn point_at_endpoints_and_middle() {
        let line = vec![l(0.0, 0.0), l(10.0, 0.0)];
        assert_eq!(point_at(&line, 0.0).unwrap(), l(0.0, 0.0));
        assert_eq!(point_at(&line, 1.0).unwrap(), l(10.0, 0.0));
        assert_eq!(point_at(&line, 0.5).unwrap(), l(5.0, 0.0));
        // Clamping.
        assert_eq!(point_at(&line, -3.0).unwrap(), l(0.0, 0.0));
        assert_eq!(point_at(&line, 7.0).unwrap(), l(10.0, 0.0));
        assert!(point_at(&[], 0.5).is_none());
    }

    #[test]
    fn point_at_crosses_vertices() {
        let line = vec![l(0.0, 0.0), l(4.0, 0.0), l(4.0, 4.0)];
        // t = 0.75 -> 6m along an 8m line -> 2m up the second leg.
        let p = point_at(&line, 0.75).unwrap();
        assert!(p.distance(&l(4.0, 2.0)) < 1e-9);
    }

    #[test]
    fn resample_even_spacing() {
        let line = vec![l(0.0, 0.0), l(10.0, 0.0)];
        let r = resample(&line, 5);
        assert_eq!(r.len(), 5);
        for (i, p) in r.iter().enumerate() {
            assert!((p.x - i as f64 * 2.5).abs() < 1e-9);
        }
        // Degenerate inputs pass through.
        assert_eq!(resample(&line, 1), line);
        assert_eq!(resample(&[l(1.0, 1.0)], 5), vec![l(1.0, 1.0)]);
    }

    #[test]
    fn segment_distance_cases() {
        let a = l(0.0, 0.0);
        let b = l(10.0, 0.0);
        assert!((point_segment_distance(l(5.0, 3.0), a, b) - 3.0).abs() < 1e-12);
        assert!((point_segment_distance(l(-4.0, 3.0), a, b) - 5.0).abs() < 1e-12);
        assert!((point_segment_distance(l(13.0, 4.0), a, b) - 5.0).abs() < 1e-12);
        // Degenerate segment.
        assert!((point_segment_distance(l(3.0, 4.0), a, a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_polyline() {
        let line = vec![l(0.0, 0.0), l(10.0, 0.0), l(10.0, 10.0)];
        assert!((distance_to(&line, l(5.0, 2.0)) - 2.0).abs() < 1e-12);
        assert!((distance_to(&line, l(12.0, 5.0)) - 2.0).abs() < 1e-12);
        assert_eq!(distance_to(&[], l(0.0, 0.0)), f64::INFINITY);
    }

    #[test]
    fn simplify_straight_line_collapses() {
        let line: Vec<LocalPoint> = (0..20).map(|i| l(i as f64, 0.0)).collect();
        let s = simplify(&line, 0.5);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], line[0]);
        assert_eq!(s[1], line[19]);
    }

    #[test]
    fn simplify_keeps_corners() {
        let line = vec![l(0.0, 0.0), l(5.0, 0.1), l(10.0, 0.0), l(10.0, 10.0)];
        let s = simplify(&line, 1.0);
        assert!(s.contains(&l(10.0, 0.0)), "the corner must survive");
        assert!(
            !s.contains(&l(5.0, 0.1)),
            "the near-collinear point must go"
        );
    }

    #[test]
    fn simplify_preserves_short_inputs() {
        let two = vec![l(0.0, 0.0), l(1.0, 1.0)];
        assert_eq!(simplify(&two, 10.0), two);
    }
}
