//! Spatial substrate for the Pervasive Miner / City Semantic Diagram stack.
//!
//! This crate provides everything the mobility-mining pipeline needs to talk
//! about *where*:
//!
//! - [`GeoPoint`] / [`LocalPoint`]: WGS-84 coordinates and a flat local
//!   meter-based frame, bridged by [`Projection`] (equirectangular around a
//!   city reference point — accurate to well under a meter at city scale).
//! - [`haversine_m`]: great-circle distance, the `d(p_i, p_j)` of the paper.
//! - [`GridIndex`]: a uniform bucket grid supporting the circular
//!   `range(p, eps, P)` queries that dominate CSD construction and semantic
//!   recognition.
//! - [`KdTree`]: k-nearest-neighbour queries (used by baselines and tests).
//! - [`RTree`]: STR-packed rectangle/circle queries for skewed densities.
//! - [`polyline`]: trajectory geometry — length, resampling, simplification.
//! - [`stats`]: centroid, spatial variance (paper Eq. 1), group density
//!   `Den(S)` (Definition 11) and mean pairwise distance (spatial sparsity,
//!   Eq. 9).
//!
//! All pipeline-internal computation happens in the local frame; geodetic
//! coordinates only appear at the data-ingestion boundary.

pub mod bbox;
pub mod geodesy;
pub mod grid;
pub mod kdtree;
pub mod point;
pub mod polyline;
pub mod projection;
pub mod rtree;
pub mod soa;
pub mod stats;

pub use bbox::BoundingBox;
pub use geodesy::{haversine_m, EARTH_RADIUS_M};
pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use point::{GeoPoint, LocalPoint};
pub use projection::Projection;
pub use rtree::RTree;
pub use soa::SoaPoints;
pub use stats::{centroid, den, mean_pairwise_distance, spatial_variance};
