//! Axis-aligned bounding boxes in the local meter frame.

use crate::point::LocalPoint;

/// An axis-aligned rectangle in local coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundingBox {
    /// Lower-left corner (minimum x and y).
    pub min: LocalPoint,
    /// Upper-right corner (maximum x and y).
    pub max: LocalPoint,
}

impl BoundingBox {
    /// Creates a box from two corners, normalizing the orientation.
    pub fn new(a: LocalPoint, b: LocalPoint) -> Self {
        Self {
            min: LocalPoint::new(a.x.min(b.x), a.y.min(b.y)),
            max: LocalPoint::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The smallest box enclosing all `points`, or `None` for an empty slice.
    pub fn enclosing(points: &[LocalPoint]) -> Option<Self> {
        let first = points.first()?;
        let mut bb = BoundingBox {
            min: *first,
            max: *first,
        };
        for p in &points[1..] {
            bb.expand(*p);
        }
        Some(bb)
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: LocalPoint) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows the box outward by `margin` meters on every side.
    pub fn inflate(&self, margin: f64) -> Self {
        Self {
            min: LocalPoint::new(self.min.x - margin, self.min.y - margin),
            max: LocalPoint::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Whether `p` lies inside the box (boundary inclusive).
    pub fn contains(&self, p: LocalPoint) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether two boxes overlap (boundary touching counts).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Box width in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Box area in square meters.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center of the box.
    pub fn center(&self) -> LocalPoint {
        LocalPoint::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_corner_order() {
        let bb = BoundingBox::new(LocalPoint::new(5.0, -1.0), LocalPoint::new(-2.0, 3.0));
        assert_eq!(bb.min, LocalPoint::new(-2.0, -1.0));
        assert_eq!(bb.max, LocalPoint::new(5.0, 3.0));
    }

    #[test]
    fn enclosing_covers_all_points() {
        let pts = vec![
            LocalPoint::new(0.0, 0.0),
            LocalPoint::new(10.0, -5.0),
            LocalPoint::new(-3.0, 8.0),
        ];
        let bb = BoundingBox::enclosing(&pts).unwrap();
        for p in &pts {
            assert!(bb.contains(*p));
        }
        assert_eq!(bb.width(), 13.0);
        assert_eq!(bb.height(), 13.0);
    }

    #[test]
    fn enclosing_empty_is_none() {
        assert!(BoundingBox::enclosing(&[]).is_none());
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let bb = BoundingBox::new(LocalPoint::ORIGIN, LocalPoint::new(1.0, 1.0));
        assert!(bb.contains(LocalPoint::new(0.0, 0.0)));
        assert!(bb.contains(LocalPoint::new(1.0, 1.0)));
        assert!(!bb.contains(LocalPoint::new(1.0001, 1.0)));
    }

    #[test]
    fn intersection_detection() {
        let a = BoundingBox::new(LocalPoint::ORIGIN, LocalPoint::new(2.0, 2.0));
        let b = BoundingBox::new(LocalPoint::new(1.0, 1.0), LocalPoint::new(3.0, 3.0));
        let c = BoundingBox::new(LocalPoint::new(5.0, 5.0), LocalPoint::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting.
        let d = BoundingBox::new(LocalPoint::new(2.0, 0.0), LocalPoint::new(4.0, 2.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn inflate_and_center() {
        let bb = BoundingBox::new(LocalPoint::ORIGIN, LocalPoint::new(4.0, 2.0));
        assert_eq!(bb.center(), LocalPoint::new(2.0, 1.0));
        let big = bb.inflate(1.0);
        assert_eq!(big.min, LocalPoint::new(-1.0, -1.0));
        assert_eq!(big.max, LocalPoint::new(5.0, 3.0));
        assert_eq!(big.area(), 6.0 * 4.0);
    }
}
