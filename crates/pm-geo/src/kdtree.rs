//! A 2-d tree for nearest-neighbour and k-NN queries.

use crate::point::LocalPoint;

/// A static k-d tree (k = 2) over local points.
///
/// Built once, queried many times; used by the ROI baseline (nearest hot
/// region / nearest POI annotation) and as an oracle in tests. For pure
/// fixed-radius range search the [`GridIndex`](crate::GridIndex) is faster,
/// but the k-d tree answers *nearest* queries, which a grid cannot do without
/// an expanding search.
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Implicit tree over this permutation of input indices: the node for
    /// slice `[lo, hi)` sits at the median position after partitioning.
    order: Vec<u32>,
    points: Vec<LocalPoint>,
}

impl KdTree {
    /// Builds a tree over `points`.
    pub fn build(points: &[LocalPoint]) -> Self {
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = Self {
            order: Vec::new(),
            points: points.to_vec(),
        };
        if !points.is_empty() {
            Self::build_rec(&tree.points, &mut order, 0);
        }
        tree.order = order;
        tree
    }

    fn build_rec(points: &[LocalPoint], idxs: &mut [u32], depth: usize) {
        if idxs.len() <= 1 {
            return;
        }
        let mid = idxs.len() / 2;
        let axis_x = depth.is_multiple_of(2);
        idxs.select_nth_unstable_by(mid, |&a, &b| {
            let (pa, pb) = (points[a as usize], points[b as usize]);
            let (ka, kb) = if axis_x { (pa.x, pb.x) } else { (pa.y, pb.y) };
            ka.total_cmp(&kb)
        });
        let (lo, rest) = idxs.split_at_mut(mid);
        Self::build_rec(points, lo, depth + 1);
        Self::build_rec(points, &mut rest[1..], depth + 1);
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Index and distance of the nearest stored point to `query`, or `None`
    /// if the tree is empty.
    pub fn nearest(&self, query: LocalPoint) -> Option<(usize, f64)> {
        self.k_nearest(query, 1).pop()
    }

    /// The `k` nearest points to `query`, sorted by increasing distance.
    /// Returns fewer when the tree holds fewer than `k` points.
    pub fn k_nearest(&self, query: LocalPoint, k: usize) -> Vec<(usize, f64)> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        // Bounded max-heap of (dist_sq, idx) candidates.
        let mut heap: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        self.knn_rec(&self.order, 0, query, k, &mut heap);
        heap.sort_by(|a, b| a.0.total_cmp(&b.0));
        heap.into_iter()
            .map(|(d_sq, i)| (i as usize, d_sq.sqrt()))
            .collect()
    }

    fn knn_rec(
        &self,
        idxs: &[u32],
        depth: usize,
        query: LocalPoint,
        k: usize,
        heap: &mut Vec<(f64, u32)>,
    ) {
        if idxs.is_empty() {
            return;
        }
        let mid = idxs.len() / 2;
        let node = idxs[mid];
        let p = self.points[node as usize];
        let d_sq = p.distance_sq(&query);
        Self::heap_push(heap, k, (d_sq, node));

        let axis_x = depth.is_multiple_of(2);
        let delta = if axis_x { query.x - p.x } else { query.y - p.y };
        let (near, far) = if delta < 0.0 {
            (&idxs[..mid], &idxs[mid + 1..])
        } else {
            (&idxs[mid + 1..], &idxs[..mid])
        };
        self.knn_rec(near, depth + 1, query, k, heap);
        // Only descend into the far side if the splitting plane is closer
        // than the current k-th best distance.
        let worst = heap.last().map_or(f64::INFINITY, |&(d, _)| d);
        if heap.len() < k || delta * delta <= worst {
            self.knn_rec(far, depth + 1, query, k, heap);
        }
    }

    /// Push into a small sorted vec acting as a bounded max-heap.
    fn heap_push(heap: &mut Vec<(f64, u32)>, k: usize, item: (f64, u32)) {
        let pos = heap.partition_point(|&(d, _)| d <= item.0);
        heap.insert(pos, item);
        if heap.len() > k {
            heap.pop();
        }
    }

    /// Indices of all points within `radius` of `query` (inclusive).
    pub fn range(&self, query: LocalPoint, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if radius.is_nan() || radius < 0.0 {
            return out;
        }
        self.range_rec(&self.order, 0, query, radius * radius, radius, &mut out);
        out
    }

    fn range_rec(
        &self,
        idxs: &[u32],
        depth: usize,
        query: LocalPoint,
        r_sq: f64,
        r: f64,
        out: &mut Vec<usize>,
    ) {
        if idxs.is_empty() {
            return;
        }
        let mid = idxs.len() / 2;
        let node = idxs[mid];
        let p = self.points[node as usize];
        if p.distance_sq(&query) <= r_sq {
            out.push(node as usize);
        }
        let axis_x = depth.is_multiple_of(2);
        let delta = if axis_x { query.x - p.x } else { query.y - p.y };
        if delta - r <= 0.0 {
            self.range_rec(&idxs[..mid], depth + 1, query, r_sq, r, out);
        }
        if delta + r >= 0.0 {
            self.range_rec(&idxs[mid + 1..], depth + 1, query, r_sq, r, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_knn(points: &[LocalPoint], q: LocalPoint, k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.distance(&q)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        all.truncate(k);
        all
    }

    fn lattice() -> Vec<LocalPoint> {
        (0..15)
            .flat_map(|x| (0..15).map(move |y| LocalPoint::new(x as f64 * 9.7, y as f64 * 6.3)))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.nearest(LocalPoint::ORIGIN).is_none());
        assert!(t.k_nearest(LocalPoint::ORIGIN, 3).is_empty());
        assert!(t.range(LocalPoint::ORIGIN, 10.0).is_empty());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = lattice();
        let t = KdTree::build(&pts);
        for q in [
            LocalPoint::new(1.0, 1.0),
            LocalPoint::new(70.0, 44.0),
            LocalPoint::new(-20.0, 200.0),
        ] {
            let (gi, gd) = t.nearest(q).unwrap();
            let (bi, bd) = brute_knn(&pts, q, 1)[0];
            assert!((gd - bd).abs() < 1e-9);
            // Ties can legally resolve to different indices; compare distance.
            assert!((pts[gi].distance(&q) - pts[bi].distance(&q)).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_distances_match_brute_force() {
        let pts = lattice();
        let t = KdTree::build(&pts);
        let q = LocalPoint::new(33.3, 21.7);
        for k in [1, 5, 17, 300] {
            let got = t.k_nearest(q, k);
            let want = brute_knn(&pts, q, k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-9, "k={k}: {} vs {}", g.1, w.1);
            }
            // Sorted by distance.
            for pair in got.windows(2) {
                assert!(pair[0].1 <= pair[1].1);
            }
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = lattice();
        let t = KdTree::build(&pts);
        let q = LocalPoint::new(50.0, 50.0);
        let mut got = t.range(q, 30.0);
        got.sort_unstable();
        let want: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].distance(&q) <= 30.0)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn k_zero_returns_empty() {
        let t = KdTree::build(&[LocalPoint::ORIGIN]);
        assert!(t.k_nearest(LocalPoint::ORIGIN, 0).is_empty());
    }

    #[test]
    fn duplicate_points_counted_individually() {
        let p = LocalPoint::new(1.0, 2.0);
        let t = KdTree::build(&[p, p, LocalPoint::new(100.0, 100.0)]);
        assert_eq!(t.k_nearest(p, 2).len(), 2);
        assert_eq!(t.range(p, 0.1).len(), 2);
    }
}
