//! Spatial statistics used across the pipeline: centroid, variance (paper
//! Eq. 1), group density `Den(S)` (Definition 11) and mean pairwise distance
//! (spatial sparsity, Eq. 9).

use crate::point::LocalPoint;

/// Arithmetic centroid of a point set, or `None` for an empty slice.
pub fn centroid(points: &[LocalPoint]) -> Option<LocalPoint> {
    if points.is_empty() {
        return None;
    }
    let sum = points.iter().fold(LocalPoint::ORIGIN, |acc, p| acc + *p);
    Some(sum / points.len() as f64)
}

/// Spatial variance of a point set per the paper's Eq. 1:
///
/// `Var(S) = sum_i ((x_i - x_c)^2 + (y_i - y_c)^2) / (|S| - 1)`
///
/// in square meters. Sets with fewer than two points have zero variance by
/// convention (the paper's formula is undefined there; a singleton is
/// maximally concentrated).
pub fn spatial_variance(points: &[LocalPoint]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let c = centroid(points).expect("non-empty by the guard above");
    let ss: f64 = points.iter().map(|p| p.distance_sq(&c)).sum();
    ss / (points.len() - 1) as f64
}

/// Group density `Den(S)` in points per square meter (Definition 11).
///
/// The paper leaves `Den` unspecified; we define it as the point count over
/// the variance-equivalent disk area:
///
/// `Den(S) = |S| / (pi * Var(S))`
///
/// which makes the paper's default threshold `rho = 0.002 m^-2` correspond to
/// a ~90 m RMS group radius at the default support `sigma = 50` — consistent
/// with the 0–100 m sparsity axis of Fig. 9. Degenerate sets (fewer than two
/// points, or all points coincident) are reported as infinitely dense so they
/// always pass a density gate.
pub fn den(points: &[LocalPoint]) -> f64 {
    let var = spatial_variance(points);
    if var <= f64::EPSILON {
        return f64::INFINITY;
    }
    points.len() as f64 / (std::f64::consts::PI * var)
}

/// Mean pairwise Euclidean distance of a point set, in meters — the
/// `ss(Group(sp_k))` of Eq. 9. Returns 0 for sets with fewer than two points.
pub fn mean_pairwise_distance(points: &[LocalPoint]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n - 1 {
        for j in i + 1..n {
            total += points[i].distance(&points[j]);
        }
    }
    total * 2.0 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(centroid(&[]).is_none());
    }

    #[test]
    fn centroid_of_symmetric_square() {
        let pts = vec![
            LocalPoint::new(0.0, 0.0),
            LocalPoint::new(2.0, 0.0),
            LocalPoint::new(0.0, 2.0),
            LocalPoint::new(2.0, 2.0),
        ];
        assert_eq!(centroid(&pts).unwrap(), LocalPoint::new(1.0, 1.0));
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(spatial_variance(&[LocalPoint::new(5.0, 5.0)]), 0.0);
        assert_eq!(spatial_variance(&[]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // Two points 10m apart: centroid in the middle, each contributes 25,
        // divided by (n-1)=1 => 50.
        let pts = vec![LocalPoint::new(0.0, 0.0), LocalPoint::new(10.0, 0.0)];
        assert!((spatial_variance(&pts) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn variance_is_translation_invariant() {
        let pts = vec![
            LocalPoint::new(0.0, 0.0),
            LocalPoint::new(3.0, 1.0),
            LocalPoint::new(-2.0, 4.0),
        ];
        let shifted: Vec<LocalPoint> = pts
            .iter()
            .map(|p| *p + LocalPoint::new(1e4, -5e3))
            .collect();
        assert!((spatial_variance(&pts) - spatial_variance(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn den_of_coincident_points_is_infinite() {
        let p = LocalPoint::new(1.0, 1.0);
        assert_eq!(den(&[p, p, p]), f64::INFINITY);
        assert_eq!(den(&[p]), f64::INFINITY);
    }

    #[test]
    fn den_decreases_as_points_spread() {
        let tight: Vec<LocalPoint> = (0..10).map(|i| LocalPoint::new(i as f64, 0.0)).collect();
        let loose: Vec<LocalPoint> = (0..10)
            .map(|i| LocalPoint::new(i as f64 * 10.0, 0.0))
            .collect();
        assert!(den(&tight) > den(&loose));
    }

    #[test]
    fn den_paper_scale_sanity() {
        // 50 points uniform on a ~90m-RMS blob should sit near the paper's
        // rho = 0.002 default. Construct a ring of radius 89m: Var ~ 89^2.
        let n = 50;
        let pts: Vec<LocalPoint> = (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                LocalPoint::new(89.0 * a.cos(), 89.0 * a.sin())
            })
            .collect();
        let d = den(&pts);
        assert!((0.001..0.004).contains(&d), "got {d}");
    }

    #[test]
    fn mean_pairwise_distance_pair() {
        let pts = vec![LocalPoint::new(0.0, 0.0), LocalPoint::new(7.0, 0.0)];
        assert!((mean_pairwise_distance(&pts) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn mean_pairwise_distance_triangle() {
        // Equilateral triangle with side 2: mean pairwise distance is 2.
        let h = 3.0_f64.sqrt();
        let pts = vec![
            LocalPoint::new(0.0, 0.0),
            LocalPoint::new(2.0, 0.0),
            LocalPoint::new(1.0, h),
        ];
        assert!((mean_pairwise_distance(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_pairwise_distance_degenerate() {
        assert_eq!(mean_pairwise_distance(&[]), 0.0);
        assert_eq!(mean_pairwise_distance(&[LocalPoint::ORIGIN]), 0.0);
    }
}
