//! Property-based tests for the spatial substrate: the indexes must agree
//! with brute force on every query, and the statistics must obey their
//! mathematical invariants.

use pm_geo::{
    centroid, den, haversine_m, mean_pairwise_distance, spatial_variance, GeoPoint, GridIndex,
    KdTree, LocalPoint, Projection,
};
use proptest::prelude::*;

fn local_point() -> impl Strategy<Value = LocalPoint> {
    (-5_000.0..5_000.0f64, -5_000.0..5_000.0f64).prop_map(|(x, y)| LocalPoint::new(x, y))
}

fn point_vec(max: usize) -> impl Strategy<Value = Vec<LocalPoint>> {
    prop::collection::vec(local_point(), 0..max)
}

proptest! {
    #[test]
    fn grid_range_matches_brute_force(
        points in point_vec(200),
        q in local_point(),
        radius in 0.0..2_000.0f64,
        cell in 1.0..500.0f64,
    ) {
        let idx = GridIndex::build(&points, cell);
        let mut got = idx.range(q, radius);
        got.sort_unstable();
        let want: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].distance(&q) <= radius)
            .collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(idx.count_in_range(q, radius), want.len());
    }

    #[test]
    fn kdtree_range_matches_brute_force(
        points in point_vec(150),
        q in local_point(),
        radius in 0.0..2_000.0f64,
    ) {
        let tree = KdTree::build(&points);
        let mut got = tree.range(q, radius);
        got.sort_unstable();
        let want: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].distance(&q) <= radius)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_knn_distances_match_brute_force(
        points in point_vec(150),
        q in local_point(),
        k in 1usize..20,
    ) {
        let tree = KdTree::build(&points);
        let got = tree.k_nearest(q, k);
        let mut want: Vec<f64> = points.iter().map(|p| p.distance(&q)).collect();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.1 - w).abs() < 1e-6, "{} vs {}", g.1, w);
        }
    }

    #[test]
    fn haversine_symmetry_and_nonnegativity(
        lon1 in -179.0..179.0f64, lat1 in -89.0..89.0f64,
        lon2 in -179.0..179.0f64, lat2 in -89.0..89.0f64,
    ) {
        let a = GeoPoint::new(lon1, lat1);
        let b = GeoPoint::new(lon2, lat2);
        let d_ab = haversine_m(a, b);
        let d_ba = haversine_m(b, a);
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
    }

    #[test]
    fn projection_roundtrip(
        dlon in -0.5..0.5f64, dlat in -0.5..0.5f64,
    ) {
        let origin = GeoPoint::new(121.47, 31.23);
        let proj = Projection::new(origin);
        let p = GeoPoint::new(origin.lon + dlon, origin.lat + dlat);
        let back = proj.to_geo(proj.to_local(p));
        prop_assert!((back.lon - p.lon).abs() < 1e-9);
        prop_assert!((back.lat - p.lat).abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_short_distances(
        dlon in -0.2..0.2f64, dlat in -0.2..0.2f64,
    ) {
        let origin = GeoPoint::new(121.47, 31.23);
        let proj = Projection::new(origin);
        let p = GeoPoint::new(origin.lon + dlon, origin.lat + dlat);
        let planar = proj.to_local(p).distance(&LocalPoint::ORIGIN);
        let sphere = haversine_m(origin, p);
        if sphere > 1.0 {
            prop_assert!((planar - sphere).abs() / sphere < 5e-3);
        }
    }

    #[test]
    fn variance_nonnegative_and_translation_invariant(
        points in point_vec(60),
        dx in -1e4..1e4f64, dy in -1e4..1e4f64,
    ) {
        let v = spatial_variance(&points);
        prop_assert!(v >= 0.0);
        let shifted: Vec<LocalPoint> =
            points.iter().map(|p| *p + LocalPoint::new(dx, dy)).collect();
        let vs = spatial_variance(&shifted);
        let tol = 1e-6 * (1.0 + v.abs());
        prop_assert!((v - vs).abs() < tol, "{v} vs {vs}");
    }

    #[test]
    fn centroid_lies_in_bounding_box(points in point_vec(60)) {
        if let Some(c) = centroid(&points) {
            let bb = pm_geo::BoundingBox::enclosing(&points).unwrap();
            prop_assert!(bb.inflate(1e-9).contains(c));
        } else {
            prop_assert!(points.is_empty());
        }
    }

    #[test]
    fn sparsity_nonnegative_and_scales(points in point_vec(40)) {
        let s = mean_pairwise_distance(&points);
        prop_assert!(s >= 0.0);
        let doubled: Vec<LocalPoint> = points.iter().map(|p| *p * 2.0).collect();
        let s2 = mean_pairwise_distance(&doubled);
        prop_assert!((s2 - 2.0 * s).abs() < 1e-6 * (1.0 + s));
    }

    #[test]
    fn density_positive(points in point_vec(40)) {
        prop_assert!(den(&points) > 0.0);
    }
}

proptest! {
    #[test]
    fn rtree_circle_matches_brute_force(
        points in point_vec(150),
        q in local_point(),
        radius in 0.0..2_000.0f64,
    ) {
        let tree = pm_geo::RTree::build(&points);
        let mut got = tree.query_circle(q, radius);
        got.sort_unstable();
        let want: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].distance(&q) <= radius)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_rect_matches_brute_force(
        points in point_vec(150),
        a in local_point(),
        b in local_point(),
    ) {
        let bb = pm_geo::BoundingBox::new(a, b);
        let tree = pm_geo::RTree::build(&points);
        let mut got = tree.query_rect(&bb);
        got.sort_unstable();
        let want: Vec<usize> = (0..points.len())
            .filter(|&i| bb.contains(points[i]))
            .collect();
        prop_assert_eq!(got, want);
    }
}
