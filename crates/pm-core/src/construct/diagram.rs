//! The assembled **City Semantic Diagram** (Definition 4).

use crate::construct::clustering::popularity_clustering;
use crate::construct::merge::{merge_units, unit_distribution};
use crate::construct::purify::purify_tracked;
use crate::error::{Degradation, MinerError};
use crate::params::MinerParams;
use crate::popularity::PopularityModel;
use crate::types::{Category, Poi, Tags};
use pm_geo::{centroid, GridIndex, LocalPoint};

/// One fine-grained semantic unit of the diagram (Definition 3): a small
/// region whose POIs are homogeneous in location or semantics.
#[derive(Debug, Clone)]
pub struct SemanticUnit {
    /// Indices into the diagram's POI slice.
    pub members: Vec<usize>,
    /// Union of the member categories.
    pub tags: Tags,
    /// Centroid of the member positions.
    pub center: LocalPoint,
    /// Eq. 6 popularity-weighted semantic distribution of the unit.
    pub distribution: [f64; Category::COUNT],
}

/// Which construction steps to run — the ablation knob for the
/// `ablation_purification` bench (DESIGN.md §4).
#[derive(Clone, Copy, Debug)]
pub struct ConstructionOptions {
    /// Run Algorithm 2 (semantic purification).
    pub purify: bool,
    /// Run the cosine merging step.
    pub merge: bool,
}

impl Default for ConstructionOptions {
    fn default() -> Self {
        Self {
            purify: true,
            merge: true,
        }
    }
}

/// Summary statistics of a construction run (used by the Fig. 6 bench in
/// lieu of the paper's map rendering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildStats {
    /// POIs in the input.
    pub n_pois: usize,
    /// Coarse clusters out of Algorithm 1.
    pub n_coarse: usize,
    /// Leftover POIs after Algorithm 1.
    pub n_leftover: usize,
    /// Units after purification (before merging).
    pub n_purified: usize,
    /// Final unit count.
    pub n_units: usize,
    /// POIs covered by final units.
    pub n_covered: usize,
    /// Fraction of final units that are single-category.
    pub purity: f64,
}

/// The City Semantic Diagram: the POI database organized into fine-grained
/// semantic units, with the spatial index and popularity model needed by
/// semantic recognition (Algorithm 3).
#[derive(Debug, Clone)]
pub struct CitySemanticDiagram {
    pois: Vec<Poi>,
    popularity: Vec<f64>,
    units: Vec<SemanticUnit>,
    /// `unit_of[i]` = unit owning POI `i`, if any.
    unit_of: Vec<Option<usize>>,
    index: GridIndex,
    stats: BuildStats,
    degradations: Vec<Degradation>,
}

impl CitySemanticDiagram {
    /// Full three-step construction from a POI database and the stay-point
    /// corpus that defines popularity.
    ///
    /// Fails fast on invalid [`MinerParams`]. Degenerate *data* never fails
    /// the build: POIs and stay locations with non-finite coordinates are
    /// dropped and reported through [`Self::degradations`], and the diagram
    /// is built from what remains (its [`Self::pois`] slice reflects the
    /// retained POIs).
    pub fn build(
        pois: &[Poi],
        stay_points: &[LocalPoint],
        params: &MinerParams,
    ) -> Result<Self, MinerError> {
        Self::build_with_options(pois, stay_points, params, ConstructionOptions::default())
    }

    /// Construction with individual steps disabled (ablation studies).
    pub fn build_with_options(
        pois: &[Poi],
        stay_points: &[LocalPoint],
        params: &MinerParams,
        options: ConstructionOptions,
    ) -> Result<Self, MinerError> {
        Self::build_observed(pois, stay_points, params, options, &pm_obs::Obs::noop())
    }

    /// [`Self::build_with_options`] under observation: each construction
    /// phase is timed as a `construct.*` span and the phase outputs are
    /// counted. Observation is one-way — the diagram built is byte-identical
    /// to an unobserved build.
    pub fn build_observed(
        pois: &[Poi],
        stay_points: &[LocalPoint],
        params: &MinerParams,
        options: ConstructionOptions,
        obs: &pm_obs::Obs,
    ) -> Result<Self, MinerError> {
        params.validate()?;
        let mut degradations = Vec::new();
        obs.gauge("input.pois", pois.len() as f64);
        obs.gauge("input.stay_locations", stay_points.len() as f64);

        // Non-finite coordinates poison every later stage (popularity
        // kernels, variance tests, the grid index); drop them up front and
        // record how much was lost.
        let mut pois: Vec<Poi> = pois.to_vec();
        let n_input = pois.len();
        pois.retain(|p| p.pos.x.is_finite() && p.pos.y.is_finite());
        if pois.len() < n_input {
            degradations.push(Degradation::NonFinitePois {
                dropped: n_input - pois.len(),
            });
        }

        let n_bad_stays = stay_points
            .iter()
            .filter(|p| !(p.x.is_finite() && p.y.is_finite()))
            .count();
        let finite_stays: Vec<LocalPoint>;
        let stay_points: &[LocalPoint] = if n_bad_stays > 0 {
            degradations.push(Degradation::NonFiniteStayLocations {
                dropped: n_bad_stays,
            });
            finite_stays = stay_points
                .iter()
                .copied()
                .filter(|p| p.x.is_finite() && p.y.is_finite())
                .collect();
            &finite_stays
        } else {
            stay_points
        };

        let span = obs.span("construct.popularity_model");
        let model = PopularityModel::build(stay_points, params.r3sigma);
        let positions: Vec<LocalPoint> = pois.iter().map(|p| p.pos).collect();
        let popularity = model.popularity_of_threads(&positions, params.threads);
        span.finish();

        let span = obs.span("construct.clustering");
        let coarse = popularity_clustering(&pois, &popularity, params);
        span.finish();
        let n_coarse = coarse.clusters.len();
        let n_leftover = coarse.leftovers.len();
        obs.incr("construct.coarse_clusters", n_coarse as u64);
        obs.incr("construct.leftover_pois", n_leftover as u64);

        let span = obs.span("construct.purify");
        let purified = if options.purify {
            purify_tracked(&pois, coarse.clusters, params, &mut degradations)
        } else {
            coarse.clusters
        };
        span.finish();
        let n_purified = purified.len();
        obs.incr("construct.purified_units", n_purified as u64);

        let span = obs.span("construct.merge");
        let final_units = if options.merge {
            merge_units(&pois, &popularity, purified, &coarse.leftovers, params)
        } else {
            purified
        };
        span.finish();
        // Merging only ever fuses purified units (and absorbs leftovers), so
        // the drop in unit count is the number of merges applied.
        obs.incr(
            "construct.merges_applied",
            n_purified.saturating_sub(final_units.len()) as u64,
        );

        let span = obs.span("construct.assemble");
        let mut unit_of = vec![None; pois.len()];
        let units: Vec<SemanticUnit> = final_units
            .into_iter()
            .enumerate()
            .map(|(uid, members)| {
                for &i in &members {
                    unit_of[i] = Some(uid);
                }
                let pts: Vec<LocalPoint> = members.iter().map(|&i| pois[i].pos).collect();
                let tags = members.iter().map(|&i| pois[i].category).collect();
                let distribution = unit_distribution(&pois, &popularity, &members);
                SemanticUnit {
                    center: centroid(&pts).unwrap_or(LocalPoint::ORIGIN),
                    members,
                    tags,
                    distribution,
                }
            })
            .collect();

        let n_covered = unit_of.iter().filter(|u| u.is_some()).count();
        let purity = if units.is_empty() {
            1.0
        } else {
            units.iter().filter(|u| u.tags.len() == 1).count() as f64 / units.len() as f64
        };
        let stats = BuildStats {
            n_pois: pois.len(),
            n_coarse,
            n_leftover,
            n_purified,
            n_units: units.len(),
            n_covered,
            purity,
        };

        let index = GridIndex::build(&positions, params.r3sigma);
        span.finish();
        obs.incr("construct.final_units", stats.n_units as u64);
        obs.incr("construct.covered_pois", n_covered as u64);
        crate::error::record_degradations(obs, &degradations);

        Ok(Self {
            popularity,
            units,
            unit_of,
            index,
            pois,
            stats,
            degradations,
        })
    }

    /// Reassembles a diagram from previously serialized parts — the
    /// constructor behind `pm-store` artifact loading.
    ///
    /// The caller provides exactly the state a build would have produced:
    /// the retained POIs, their Eq. 3 popularity, the final units, the build
    /// stats, the tolerated degradations, and the grid cell size the build
    /// used (`MinerParams::r3sigma` at build time). Derived state — the
    /// POI→unit ownership map and the spatial index — is reconstructed
    /// deterministically, so a reassembled diagram is behaviourally
    /// identical to the one that was serialized.
    ///
    /// Fails with a typed [`MinerError::Construct`] (never panics) when the
    /// parts are inconsistent: popularity length mismatch, unit members out
    /// of range or owned by two units, or a non-positive cell size.
    pub fn from_parts(
        pois: Vec<Poi>,
        popularity: Vec<f64>,
        units: Vec<SemanticUnit>,
        stats: BuildStats,
        degradations: Vec<Degradation>,
        cell_size: f64,
    ) -> Result<Self, MinerError> {
        if popularity.len() != pois.len() {
            return Err(MinerError::construct(format!(
                "popularity length {} does not match POI count {}",
                popularity.len(),
                pois.len()
            )));
        }
        if !(cell_size.is_finite() && cell_size > 0.0) {
            return Err(MinerError::construct(format!(
                "grid cell size must be positive and finite, got {cell_size}"
            )));
        }
        let mut unit_of = vec![None; pois.len()];
        for (uid, unit) in units.iter().enumerate() {
            for &i in &unit.members {
                if i >= pois.len() {
                    return Err(MinerError::construct(format!(
                        "unit {uid} references POI {i} out of range ({} POIs)",
                        pois.len()
                    )));
                }
                if let Some(prev) = unit_of[i] {
                    return Err(MinerError::construct(format!(
                        "POI {i} owned by two units ({prev} and {uid})"
                    )));
                }
                unit_of[i] = Some(uid);
            }
        }
        let positions: Vec<LocalPoint> = pois.iter().map(|p| p.pos).collect();
        let index = GridIndex::build(&positions, cell_size);
        Ok(Self {
            pois,
            popularity,
            units,
            unit_of,
            index,
            stats,
            degradations,
        })
    }

    /// The fine-grained semantic units.
    pub fn units(&self) -> &[SemanticUnit] {
        &self.units
    }

    /// The Eq. 3 popularity of every retained POI, aligned with
    /// [`Self::pois`] — the serialization counterpart of
    /// [`Self::popularity`].
    pub fn popularities(&self) -> &[f64] {
        &self.popularity
    }

    /// The cell size the spatial index was *requested* with
    /// (`MinerParams::r3sigma` at build time) — what a serializer must
    /// store so [`Self::from_parts`] can rebuild the same index.
    pub fn grid_cell_size(&self) -> f64 {
        self.index.requested_cell_size()
    }

    /// The *effective* cell size of the spatial index (the requested size,
    /// possibly inflated by the grid's memory cap) — an integrity probe for
    /// artifact loaders.
    pub fn grid_cell_size_effective(&self) -> f64 {
        self.index.cell_size()
    }

    /// The POI database the diagram organizes.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Eq. 3 popularity of POI `idx` (0.0 for out-of-range indices).
    pub fn popularity(&self, idx: usize) -> f64 {
        self.popularity.get(idx).copied().unwrap_or(0.0)
    }

    /// `FindSemanticUnit`: the unit owning POI `idx`, if any.
    pub fn unit_of(&self, idx: usize) -> Option<usize> {
        self.unit_of.get(idx).copied().flatten()
    }

    /// Indices of POIs within `radius` of `pos` — the `range` primitive of
    /// Algorithm 3.
    pub fn range(&self, pos: LocalPoint, radius: f64) -> Vec<usize> {
        self.index.range(pos, radius)
    }

    /// Construction summary statistics.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Recoverable trouble tolerated during construction (dropped
    /// non-finite records, clusters kept unsplit). Empty for clean input.
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic town: a shop street, an office block, and a
    /// mixed tower, plus popular stay locations near each.
    fn town() -> (Vec<Poi>, Vec<LocalPoint>) {
        let mut pois = Vec::new();
        let mut id = 0;
        let mut push = |pois: &mut Vec<Poi>, x: f64, y: f64, c: Category| {
            pois.push(Poi::new(id, LocalPoint::new(x, y), c));
            id += 1;
        };
        for i in 0..8 {
            push(&mut pois, i as f64 * 15.0, 0.0, Category::Shop);
        }
        for i in 0..8 {
            push(
                &mut pois,
                1_000.0 + i as f64 * 15.0,
                0.0,
                Category::Business,
            );
        }
        for i in 0..6 {
            let (dx, dy) = ((i % 3) as f64 * 4.0, (i / 3) as f64 * 4.0);
            let c = [Category::Hotel, Category::Restaurant, Category::Shop][i % 3];
            push(&mut pois, 2_000.0 + dx, dy, c);
        }
        let mut stays = Vec::new();
        for anchor in [0.0, 1_000.0, 2_000.0] {
            for k in 0..40 {
                stays.push(LocalPoint::new(
                    anchor + (k % 7) as f64 * 9.0,
                    (k % 5) as f64 * 8.0,
                ));
            }
        }
        (pois, stays)
    }

    #[test]
    fn builds_three_units_for_three_places() {
        let (pois, stays) = town();
        let params = MinerParams {
            min_pts: 4,
            n_min: 4,
            ..MinerParams::default()
        };
        let csd = CitySemanticDiagram::build(&pois, &stays, &params).expect("build");
        assert_eq!(csd.units().len(), 3, "stats: {:?}", csd.stats());
        // The tower unit is multi-category, the street/block units are pure.
        let multi = csd.units().iter().filter(|u| u.tags.len() > 1).count();
        assert_eq!(multi, 1);
    }

    #[test]
    fn unit_of_is_consistent_with_members() {
        let (pois, stays) = town();
        let params = MinerParams {
            min_pts: 4,
            ..MinerParams::default()
        };
        let csd = CitySemanticDiagram::build(&pois, &stays, &params).expect("build");
        for (uid, unit) in csd.units().iter().enumerate() {
            for &i in &unit.members {
                assert_eq!(csd.unit_of(i), Some(uid));
            }
        }
    }

    #[test]
    fn range_query_returns_nearby_pois() {
        let (pois, stays) = town();
        let csd =
            CitySemanticDiagram::build(&pois, &stays, &MinerParams::default()).expect("build");
        let hits = csd.range(LocalPoint::new(0.0, 0.0), 100.0);
        assert!(hits.len() >= 7);
        assert!(hits
            .iter()
            .all(|&i| csd.pois()[i].pos.distance(&LocalPoint::ORIGIN) <= 100.0));
    }

    #[test]
    fn stats_are_coherent() {
        let (pois, stays) = town();
        let params = MinerParams {
            min_pts: 4,
            ..MinerParams::default()
        };
        let csd = CitySemanticDiagram::build(&pois, &stays, &params).expect("build");
        let s = csd.stats();
        assert_eq!(s.n_pois, pois.len());
        assert!(s.n_covered <= s.n_pois);
        assert!(s.n_units >= 1);
        assert!((0.0..=1.0).contains(&s.purity));
    }

    #[test]
    fn ablation_options_change_the_output() {
        let (pois, stays) = town();
        let params = MinerParams {
            min_pts: 4,
            ..MinerParams::default()
        };
        let full = CitySemanticDiagram::build(&pois, &stays, &params).expect("build");
        let no_merge = CitySemanticDiagram::build_with_options(
            &pois,
            &stays,
            &params,
            ConstructionOptions {
                purify: true,
                merge: false,
            },
        )
        .expect("build");
        // Without merging, leftover POIs stay uncovered.
        assert!(no_merge.stats().n_covered <= full.stats().n_covered);
    }

    #[test]
    fn empty_inputs_build_empty_diagram() {
        let csd = CitySemanticDiagram::build(&[], &[], &MinerParams::default()).expect("build");
        assert!(csd.units().is_empty());
        assert!(csd.range(LocalPoint::ORIGIN, 1_000.0).is_empty());
        assert_eq!(csd.stats().n_units, 0);
        assert!(csd.degradations().is_empty());
    }

    #[test]
    fn invalid_params_fail_without_panicking() {
        let (pois, stays) = town();
        let bad = MinerParams {
            alpha: 5.0,
            ..MinerParams::default()
        };
        let err = CitySemanticDiagram::build(&pois, &stays, &bad).unwrap_err();
        assert_eq!(err.stage(), "params");
    }

    #[test]
    fn non_finite_inputs_degrade_gracefully() {
        let (mut pois, mut stays) = town();
        let next_id = pois.len() as u64;
        pois.push(Poi::new(
            next_id,
            LocalPoint::new(f64::NAN, 0.0),
            Category::Shop,
        ));
        pois.push(Poi::new(
            next_id + 1,
            LocalPoint::new(f64::INFINITY, f64::NEG_INFINITY),
            Category::Hotel,
        ));
        stays.push(LocalPoint::new(f64::NAN, f64::NAN));
        let params = MinerParams {
            min_pts: 4,
            n_min: 4,
            ..MinerParams::default()
        };
        let csd = CitySemanticDiagram::build(&pois, &stays, &params).expect("build");
        // The corrupt records are excluded, the clean diagram is unchanged.
        assert_eq!(csd.pois().len(), pois.len() - 2);
        assert_eq!(csd.units().len(), 3, "stats: {:?}", csd.stats());
        assert!(csd
            .degradations()
            .contains(&Degradation::NonFinitePois { dropped: 2 }));
        assert!(csd
            .degradations()
            .contains(&Degradation::NonFiniteStayLocations { dropped: 1 }));
    }

    #[test]
    fn out_of_range_accessors_are_tolerant() {
        let (pois, stays) = town();
        let csd =
            CitySemanticDiagram::build(&pois, &stays, &MinerParams::default()).expect("build");
        assert_eq!(csd.popularity(usize::MAX), 0.0);
        assert_eq!(csd.unit_of(usize::MAX), None);
    }
}
