//! Algorithm 1: *Popularity Based Clustering*.
//!
//! A DB-Scan-alike expansion over the POI set. A neighbour joins the growing
//! cluster when (a) its popularity is within a factor `alpha` of the seed's
//! popularity — both directions — and (b) it is either vertically overlapping
//! (within `d_v`, the multi-purpose-skyscraper case) or shares the seed's
//! semantic category. Clusters smaller than `MinPts_p` are discarded; their
//! POIs become *leftovers* that the merging step may still absorb.

use crate::params::MinerParams;
use crate::types::Poi;
use pm_geo::GridIndex;

/// Output of the popularity-based clustering step: coarse clusters (lists of
/// indices into the POI slice) and leftover POIs covered by no cluster.
#[derive(Debug, Clone, Default)]
pub struct CoarseClusters {
    /// Each cluster is a list of POI indices.
    pub clusters: Vec<Vec<usize>>,
    /// POI indices not covered by any kept cluster.
    pub leftovers: Vec<usize>,
}

/// Runs Algorithm 1 over `pois` with per-POI `popularity` (Eq. 3 values,
/// aligned with `pois`).
pub fn popularity_clustering(
    pois: &[Poi],
    popularity: &[f64],
    params: &MinerParams,
) -> CoarseClusters {
    let n = pois.len();
    // `popularity` is aligned with `pois` by every in-crate caller; a short
    // slice (caller bug) reads as zero popularity rather than panicking —
    // those POIs simply fail the ratio gate against popular seeds.
    let pop = |i: usize| popularity.get(i).copied().unwrap_or(0.0);
    let positions: Vec<_> = pois.iter().map(|p| p.pos).collect();
    let index = GridIndex::build(&positions, params.eps_p.max(1e-9));

    // The expansion sweep below is inherently sequential (cluster identity
    // depends on claim order), but its cost is dominated by the O(n·q)
    // range queries — which are independent per POI. With more than one
    // worker, precompute every neighbourhood up front; the lists are
    // identical in content and order to what `range_into` yields lazily,
    // so the clustering is byte-identical either way.
    let hoods: Option<Vec<Vec<usize>>> =
        (pm_runtime::resolve_threads(params.threads) > 1).then(|| {
            pm_runtime::par_map(&positions, params.threads, |p| {
                index.range(*p, params.eps_p)
            })
        });

    // `claimed[i]`: POI i has been removed from P (line 3 / line 8 of the
    // pseudo code) — it can seed no further cluster and join no other one.
    let mut claimed = vec![false; n];
    let mut clusters = Vec::new();
    let mut nbr_buf = Vec::new();
    let neighbours_of = |i: usize, nbr_buf: &mut Vec<usize>| match &hoods {
        Some(h) => {
            nbr_buf.clear();
            nbr_buf.extend_from_slice(&h[i]);
        }
        None => index.range_into(positions[i], params.eps_p, nbr_buf),
    };

    // Popularity-ratio gate of line 5: both ratios >= alpha. Zero-popularity
    // pairs compare equal (0/0); mixed zero/non-zero pairs fail the gate.
    let ratio_ok = |a: f64, b: f64| -> bool {
        if a == 0.0 && b == 0.0 {
            return true;
        }
        if a == 0.0 || b == 0.0 {
            return false;
        }
        a / b >= params.alpha && b / a >= params.alpha
    };

    for seed in 0..n {
        if claimed[seed] {
            continue;
        }
        claimed[seed] = true;
        let mut members = vec![seed];
        // Work queue `V` of candidate neighbours (line 3/7).
        neighbours_of(seed, &mut nbr_buf);
        let mut queue: Vec<usize> = nbr_buf.iter().copied().filter(|&j| !claimed[j]).collect();

        while let Some(j) = queue.pop() {
            if claimed[j] {
                continue;
            }
            if !ratio_ok(pop(j), pop(seed)) {
                continue;
            }
            let vertical = pois[seed].pos.distance(&pois[j].pos) <= params.d_v;
            if !(vertical || pois[j].category == pois[seed].category) {
                continue;
            }
            claimed[j] = true;
            members.push(j);
            neighbours_of(j, &mut nbr_buf);
            queue.extend(nbr_buf.iter().copied().filter(|&q| !claimed[q]));
        }

        if members.len() >= params.min_pts {
            clusters.push(members);
        }
        // Discarded members stay claimed: the paper removes them from P
        // regardless; they surface below as leftovers.
    }

    let mut in_cluster = vec![false; n];
    for c in &clusters {
        for &i in c {
            in_cluster[i] = true;
        }
    }
    let leftovers = (0..n).filter(|&i| !in_cluster[i]).collect();

    CoarseClusters {
        clusters,
        leftovers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Category;
    use pm_geo::LocalPoint;

    fn poi(id: u64, x: f64, y: f64, c: Category) -> Poi {
        Poi::new(id, LocalPoint::new(x, y), c)
    }

    fn uniform_pop(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    fn small_params() -> MinerParams {
        MinerParams {
            min_pts: 3,
            ..MinerParams::default()
        }
    }

    #[test]
    fn same_category_neighbours_cluster_together() {
        // 6 restaurants in a 20m row, eps_p = 30m.
        let pois: Vec<Poi> = (0..6)
            .map(|i| poi(i, i as f64 * 20.0, 0.0, Category::Restaurant))
            .collect();
        let out = popularity_clustering(&pois, &uniform_pop(6), &small_params());
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].len(), 6);
        assert!(out.leftovers.is_empty());
    }

    #[test]
    fn different_categories_split_beyond_dv() {
        // Two category rows 20m apart: within eps_p (30m) but beyond d_v
        // (15m), so they must not merge.
        let mut pois: Vec<Poi> = (0..4)
            .map(|i| poi(i, i as f64 * 20.0, 0.0, Category::Restaurant))
            .collect();
        pois.extend((0..4).map(|i| poi(10 + i, i as f64 * 20.0, 20.0, Category::Shop)));
        let out = popularity_clustering(&pois, &uniform_pop(8), &small_params());
        assert_eq!(out.clusters.len(), 2);
        for c in &out.clusters {
            let cat0 = pois[c[0]].category;
            assert!(c.iter().all(|&i| pois[i].category == cat0));
        }
    }

    #[test]
    fn skyscraper_mixes_categories_within_dv() {
        // A "tower": mixed categories within 10m of each other (< d_v).
        let pois = vec![
            poi(0, 0.0, 0.0, Category::Shop),
            poi(1, 5.0, 0.0, Category::Restaurant),
            poi(2, 0.0, 5.0, Category::Business),
            poi(3, 5.0, 5.0, Category::Hotel),
            poi(4, 2.0, 2.0, Category::TrafficStation),
        ];
        let out = popularity_clustering(&pois, &uniform_pop(5), &small_params());
        assert_eq!(out.clusters.len(), 1, "clusters: {:?}", out.clusters);
        assert_eq!(out.clusters[0].len(), 5);
    }

    #[test]
    fn popularity_gap_blocks_expansion() {
        // Same category, same street, but the far half is 10x more popular:
        // the ratio gate (alpha = 0.8) separates them.
        let pois: Vec<Poi> = (0..8)
            .map(|i| poi(i, i as f64 * 20.0, 0.0, Category::Shop))
            .collect();
        let pop: Vec<f64> = (0..8).map(|i| if i < 4 { 1.0 } else { 10.0 }).collect();
        let out = popularity_clustering(&pois, &pop, &small_params());
        assert_eq!(out.clusters.len(), 2);
        assert!(out.clusters.iter().all(|c| c.len() == 4));
    }

    #[test]
    fn tiny_groups_become_leftovers() {
        let pois = vec![
            poi(0, 0.0, 0.0, Category::Shop),
            poi(1, 10.0, 0.0, Category::Shop),
            // Isolated distant POI.
            poi(2, 10_000.0, 0.0, Category::Shop),
        ];
        let out = popularity_clustering(&pois, &uniform_pop(3), &small_params());
        assert!(out.clusters.is_empty());
        assert_eq!(out.leftovers, vec![0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        let out = popularity_clustering(&[], &[], &small_params());
        assert!(out.clusters.is_empty());
        assert!(out.leftovers.is_empty());
    }

    #[test]
    fn every_poi_is_clustered_or_leftover_exactly_once() {
        let mut pois = Vec::new();
        for i in 0..30 {
            let cat = if i % 2 == 0 {
                Category::Shop
            } else {
                Category::Residence
            };
            pois.push(poi(i, (i % 10) as f64 * 25.0, (i / 10) as f64 * 25.0, cat));
        }
        let out = popularity_clustering(&pois, &uniform_pop(30), &small_params());
        let mut seen = vec![0usize; 30];
        for c in &out.clusters {
            for &i in c {
                seen[i] += 1;
            }
        }
        for &i in &out.leftovers {
            seen[i] += 1;
        }
        assert!(seen.iter().all(|&s| s == 1), "coverage counts: {seen:?}");
    }

    #[test]
    fn short_popularity_slice_does_not_panic() {
        // A misaligned popularity slice reads as zero for the tail.
        let pois: Vec<Poi> = (0..4)
            .map(|i| poi(i, i as f64 * 15.0, 0.0, Category::Shop))
            .collect();
        let out = popularity_clustering(&pois, &[1.0, 1.0], &small_params());
        let covered: usize = out.clusters.iter().map(Vec::len).sum::<usize>() + out.leftovers.len();
        assert_eq!(covered, 4);
    }

    #[test]
    fn threaded_precompute_is_identical_to_lazy_queries() {
        // A street grid with popularity structure: the parallel
        // neighbourhood precompute must reproduce the serial clustering
        // exactly — same clusters, same member order, same leftovers.
        let mut pois = Vec::new();
        for i in 0..120u64 {
            let cat = match i % 3 {
                0 => Category::Shop,
                1 => Category::Restaurant,
                _ => Category::Residence,
            };
            pois.push(poi(i, (i % 15) as f64 * 18.0, (i / 15) as f64 * 18.0, cat));
        }
        let pop: Vec<f64> = (0..120).map(|i| 1.0 + (i % 4) as f64 * 0.05).collect();
        let serial = popularity_clustering(&pois, &pop, &small_params());
        for threads in [2, 4] {
            let parallel = popularity_clustering(
                &pois,
                &pop,
                &MinerParams {
                    threads,
                    ..small_params()
                },
            );
            assert_eq!(serial.clusters, parallel.clusters, "threads = {threads}");
            assert_eq!(serial.leftovers, parallel.leftovers);
        }
    }

    #[test]
    fn zero_popularity_pois_cluster_with_each_other() {
        // A street nobody visits: popularity 0 everywhere, ratio gate passes
        // (0/0 treated as equal).
        let pois: Vec<Poi> = (0..5)
            .map(|i| poi(i, i as f64 * 15.0, 0.0, Category::Industry))
            .collect();
        let out = popularity_clustering(&pois, &[0.0; 5], &small_params());
        assert_eq!(out.clusters.len(), 1);
    }
}
