//! Semantic Diagram Constructor (paper §4.1): the three-step construction
//! of the City Semantic Diagram.
//!
//! 1. [`clustering`] — Algorithm 1, *Popularity Based Clustering*: coarse
//!    clusters of POIs with similar popularity, allowing mixed semantics
//!    only at skyscraper range (`d_v`).
//! 2. [`purify`] — Algorithm 2, *Semantic Purification*: recursive
//!    KL-divergence median splits until every cluster is a fine-grained
//!    semantic unit (Definition 3).
//! 3. [`merge`] — *Semantic Unit Merging*: cosine-similarity merging of
//!    nearby fragments and absorption of leftover POIs.
//!
//! [`diagram`] assembles the steps into [`CitySemanticDiagram`].

pub mod clustering;
pub mod diagram;
pub mod merge;
pub mod purify;

pub use diagram::{BuildStats, CitySemanticDiagram, ConstructionOptions, SemanticUnit};
