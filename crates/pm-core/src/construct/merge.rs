//! *Semantic Unit Merging* (paper §4.1, Eq. 6–8).
//!
//! Purification can fragment one real-world semantic region (a pedestrian
//! street or square splits a shopping district). This step measures the
//! cosine similarity between the popularity-weighted semantic distributions
//! of nearby units (Eq. 6–8) and merges pairs above the threshold; leftover
//! POIs from Algorithm 1 are absorbed into the most similar nearby unit.

use crate::params::MinerParams;
use crate::types::{Category, Poi};
use pm_geo::GridIndex;

/// Semantic distribution of a unit per Eq. 6: for each category, the share
/// of the unit's total popularity carried by POIs of that category.
pub fn unit_distribution(
    pois: &[Poi],
    popularity: &[f64],
    unit: &[usize],
) -> [f64; Category::COUNT] {
    let mut dist = [0.0; Category::COUNT];
    let mut total = 0.0;
    for &i in unit {
        // Zero-popularity POIs still carry semantics; floor their weight so
        // deserted units keep a meaningful distribution. Out-of-range
        // popularity (misaligned caller slice) reads as the same floor.
        let w = popularity.get(i).copied().unwrap_or(0.0).max(1e-12);
        dist[pois[i].category as usize] += w;
        total += w;
    }
    if total > 0.0 {
        for d in &mut dist {
            *d /= total;
        }
    }
    dist
}

/// Eq. 7–8: cosine similarity between two unit distributions.
pub fn unit_cosine(a: &[f64; Category::COUNT], b: &[f64; Category::COUNT]) -> f64 {
    let prod = |x: &[f64; Category::COUNT], y: &[f64; Category::COUNT]| -> f64 {
        (0..Category::COUNT).map(|k| x[k] * y[k]).sum()
    };
    let denom = (prod(a, a) * prod(b, b)).sqrt();
    if denom <= 0.0 {
        0.0
    } else {
        (prod(a, b) / denom).min(1.0)
    }
}

/// Merges nearby, semantically similar units and absorbs leftovers.
///
/// Two units are *nearby* when their nearest member POIs are within
/// `merge_dist`; they merge when their Eq. 8 cosine reaches `merge_cos`.
/// Merging is transitive (union-find), matching the paper's example where a
/// chain of office fragments collapses into one unit.
pub fn merge_units(
    pois: &[Poi],
    popularity: &[f64],
    mut units: Vec<Vec<usize>>,
    leftovers: &[usize],
    params: &MinerParams,
) -> Vec<Vec<usize>> {
    // ---- Absorb leftovers first, so a lone office POI next to an office
    // unit joins it before unit-unit merging (paper Fig. 5(b)).
    if !units.is_empty() {
        let member_positions: Vec<_> = units
            .iter()
            .enumerate()
            .flat_map(|(u, m)| m.iter().map(move |&i| (u, i)))
            .collect();
        let flat_pos: Vec<_> = member_positions.iter().map(|&(_, i)| pois[i].pos).collect();
        let index = GridIndex::build(&flat_pos, params.merge_dist.max(1e-9));
        for &lo in leftovers {
            let mut best: Option<(usize, f64)> = None;
            let mut lo_dist = [0.0; Category::COUNT];
            lo_dist[pois[lo].category as usize] = 1.0;
            // Candidate units: those with a member within merge_dist.
            let mut seen_units = Vec::new();
            for entry in index.range(pois[lo].pos, params.merge_dist) {
                let (u, _) = member_positions[entry];
                if seen_units.contains(&u) {
                    continue;
                }
                seen_units.push(u);
                let d = unit_distribution(pois, popularity, &units[u]);
                let cos = unit_cosine(&lo_dist, &d);
                if cos >= params.merge_cos && best.is_none_or(|(_, c)| cos > c) {
                    best = Some((u, cos));
                }
            }
            if let Some((u, _)) = best {
                units[u].push(lo);
            }
        }
    }

    // ---- Unit-unit merging via union-find over nearby similar pairs.
    let n = units.len();
    if n == 0 {
        return units;
    }
    let dists: Vec<[f64; Category::COUNT]> = units
        .iter()
        .map(|u| unit_distribution(pois, popularity, u))
        .collect();
    let member_positions: Vec<_> = units
        .iter()
        .enumerate()
        .flat_map(|(u, m)| m.iter().map(move |&i| (u, i)))
        .collect();
    let flat_pos: Vec<_> = member_positions.iter().map(|&(_, i)| pois[i].pos).collect();
    let index = GridIndex::build(&flat_pos, params.merge_dist.max(1e-9));

    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    // Candidate pairs: units owning members within merge_dist of each other.
    let mut pairs = Vec::new();
    for (entry, &(u, i)) in member_positions.iter().enumerate() {
        for other in index.range(pois[i].pos, params.merge_dist) {
            if other <= entry {
                continue;
            }
            let (v, _) = member_positions[other];
            if u != v {
                pairs.push(if u < v { (u, v) } else { (v, u) });
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();

    for (u, v) in pairs {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru == rv {
            continue;
        }
        if unit_cosine(&dists[u], &dists[v]) >= params.merge_cos {
            parent[ru] = rv;
        }
    }

    // Collect merged groups preserving input order of roots.
    let mut merged: Vec<Vec<usize>> = Vec::new();
    let mut root_slot: Vec<Option<usize>> = vec![None; n];
    for (u, unit) in units.iter().enumerate() {
        let r = find(&mut parent, u);
        let slot = match root_slot[r] {
            Some(s) => s,
            None => {
                merged.push(Vec::new());
                root_slot[r] = Some(merged.len() - 1);
                merged.len() - 1
            }
        };
        merged[slot].extend(unit.iter().copied());
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_geo::LocalPoint;

    fn poi(id: u64, x: f64, y: f64, c: Category) -> Poi {
        Poi::new(id, LocalPoint::new(x, y), c)
    }

    fn params() -> MinerParams {
        MinerParams::default()
    }

    #[test]
    fn similar_adjacent_units_merge() {
        // Two shop fragments 20m apart (within merge_dist = 30m).
        let pois: Vec<Poi> = (0..6)
            .map(|i| poi(i, i as f64 * 10.0, 0.0, Category::Shop))
            .collect();
        let units = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let pop = vec![1.0; 6];
        let merged = merge_units(&pois, &pop, units, &[], &params());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].len(), 6);
    }

    #[test]
    fn dissimilar_adjacent_units_stay_apart() {
        let mut pois: Vec<Poi> = (0..3)
            .map(|i| poi(i, i as f64 * 10.0, 0.0, Category::Shop))
            .collect();
        pois.extend((0..3).map(|i| poi(3 + i, 30.0 + i as f64 * 10.0, 0.0, Category::Medical)));
        let units = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let merged = merge_units(&pois, &[1.0; 6], units, &[], &params());
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn similar_but_distant_units_stay_apart() {
        let mut pois: Vec<Poi> = (0..3)
            .map(|i| poi(i, i as f64 * 10.0, 0.0, Category::Shop))
            .collect();
        pois.extend((0..3).map(|i| poi(3 + i, 5_000.0 + i as f64 * 10.0, 0.0, Category::Shop)));
        let units = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let merged = merge_units(&pois, &[1.0; 6], units, &[], &params());
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn leftover_poi_absorbed_by_matching_unit() {
        // Paper Fig. 5(b): a lone office POI merges into the office unit.
        let mut pois: Vec<Poi> = (0..4)
            .map(|i| poi(i, i as f64 * 10.0, 0.0, Category::Business))
            .collect();
        pois.push(poi(4, 45.0, 0.0, Category::Business)); // leftover
        pois.push(poi(5, 45.0, 500.0, Category::Business)); // too far
        let units = vec![vec![0, 1, 2, 3]];
        let merged = merge_units(&pois, &[1.0; 6], units, &[4, 5], &params());
        assert_eq!(merged.len(), 1);
        assert!(merged[0].contains(&4));
        assert!(!merged[0].contains(&5));
    }

    #[test]
    fn leftover_of_wrong_category_not_absorbed() {
        let mut pois: Vec<Poi> = (0..4)
            .map(|i| poi(i, i as f64 * 10.0, 0.0, Category::Business))
            .collect();
        pois.push(poi(4, 45.0, 0.0, Category::Medical));
        let units = vec![vec![0, 1, 2, 3]];
        let merged = merge_units(&pois, &[1.0; 5], units, &[4], &params());
        assert_eq!(merged.len(), 1);
        assert!(!merged[0].contains(&4));
    }

    #[test]
    fn transitive_chain_merges_into_one() {
        // Three shop fragments in a chain, each within merge_dist of the
        // next but the ends 60m apart.
        let pois: Vec<Poi> = (0..9)
            .map(|i| poi(i, i as f64 * 10.0, 0.0, Category::Shop))
            .collect();
        let units = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]];
        let merged = merge_units(&pois, &[1.0; 9], units, &[], &params());
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn cosine_extremes() {
        let mut a = [0.0; Category::COUNT];
        a[0] = 1.0;
        let mut b = [0.0; Category::COUNT];
        b[1] = 1.0;
        assert_eq!(unit_cosine(&a, &b), 0.0);
        assert!((unit_cosine(&a, &a) - 1.0).abs() < 1e-12);
        let zero = [0.0; Category::COUNT];
        assert_eq!(unit_cosine(&zero, &a), 0.0);
    }

    #[test]
    fn distribution_weighted_by_popularity() {
        let pois = vec![
            poi(0, 0.0, 0.0, Category::Shop),
            poi(1, 5.0, 0.0, Category::Restaurant),
        ];
        let d = unit_distribution(&pois, &[3.0, 1.0], &[0, 1]);
        assert!((d[Category::Shop as usize] - 0.75).abs() < 1e-9);
        assert!((d[Category::Restaurant as usize] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_units_and_no_leftovers() {
        let merged = merge_units(&[], &[], Vec::new(), &[], &params());
        assert!(merged.is_empty());
    }

    #[test]
    fn empty_semantic_vectors_are_tolerated() {
        // A unit with no members yields an all-zero distribution; cosine
        // against anything is 0, so it neither merges nor panics.
        let pois: Vec<Poi> = (0..3)
            .map(|i| poi(i, i as f64 * 10.0, 0.0, Category::Shop))
            .collect();
        let empty = unit_distribution(&pois, &[1.0; 3], &[]);
        assert!(empty.iter().all(|&v| v == 0.0));
        let full = unit_distribution(&pois, &[1.0; 3], &[0, 1, 2]);
        assert_eq!(unit_cosine(&empty, &full), 0.0);
        let merged = merge_units(
            &pois,
            &[1.0; 3],
            vec![vec![0, 1, 2], vec![]],
            &[],
            &params(),
        );
        let total: usize = merged.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn short_popularity_slice_does_not_panic() {
        let pois: Vec<Poi> = (0..4)
            .map(|i| poi(i, i as f64 * 10.0, 0.0, Category::Shop))
            .collect();
        // Popularity slice shorter than the POI set: tail reads as floor.
        let d = unit_distribution(&pois, &[2.0], &[0, 1, 2, 3]);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
