//! Algorithm 2: *Semantic Purification*.
//!
//! Coarse clusters may mix semantic categories (the street-level side effect
//! of the `d_v` skyscraper rule). This step recursively splits each mixed
//! cluster at the median Kullback–Leibler divergence from its center POI
//! until every cluster qualifies as a fine-grained semantic unit
//! (Definition 3): single-category, or spatially tight (`Var <= V_min`).

use crate::error::Degradation;
use crate::params::MinerParams;
use crate::types::{Category, Poi};
use pm_cluster::GaussianKernel;
use pm_geo::{centroid, spatial_variance, LocalPoint};

/// Additive smoothing for the per-tag distributions of Eq. 4. The paper's
/// Eq. 5 is undefined when a tag is present around one POI and absent around
/// another; the standard fix keeps `KL(P, P) = 0` and preserves the ordering
/// of divergences, which is all the median split consumes.
const KL_EPS: f64 = 1e-9;

/// Runs Algorithm 2: splits every cluster in `coarse` until each qualifies
/// as a fine-grained semantic unit. Returns the unit list (POI index lists).
///
/// Convenience wrapper over [`purify_tracked`] for callers that do not care
/// about degradation events (ablation benches, tests).
pub fn purify(pois: &[Poi], coarse: Vec<Vec<usize>>, params: &MinerParams) -> Vec<Vec<usize>> {
    let mut events = Vec::new();
    purify_tracked(pois, coarse, params, &mut events)
}

/// Runs Algorithm 2, recording recoverable trouble in `events`.
///
/// Deviations from the pseudo code, documented in DESIGN.md: the paper pops
/// a *random* cluster per iteration; we process a work stack, which visits
/// the same clusters in a deterministic order (the result set is identical
/// because each split decision depends only on the cluster's own content).
/// And when the KL median split stalls (all divergences tie — e.g. a
/// two-category cluster in perfect symmetry, where the paper's loop would
/// never terminate), the farthest POI from the center splits off instead,
/// which guarantees both termination and that every output unit satisfies
/// Definition 3.
///
/// A cluster neither split can make progress on (possible only with
/// degenerate geometry, e.g. non-finite coordinates that defeat both the
/// variance test and the centroid) is kept unsplit and reported as a
/// [`Degradation::UnsplitCluster`] instead of panicking.
pub fn purify_tracked(
    pois: &[Poi],
    coarse: Vec<Vec<usize>>,
    params: &MinerParams,
    events: &mut Vec<Degradation>,
) -> Vec<Vec<usize>> {
    let kernel = GaussianKernel::new(params.r3sigma);
    let mut units = Vec::new();
    let mut stack = coarse;

    while let Some(cluster) = stack.pop() {
        if cluster.is_empty() {
            continue;
        }
        if is_fine_grained(pois, &cluster, params) {
            units.push(cluster);
            continue;
        }
        // Degenerate geometry (non-finite coordinates) poisons the variance
        // test and both split heuristics; accept the cluster as-is rather
        // than loop or panic.
        if !finite_cluster(pois, &cluster) {
            events.push(Degradation::UnsplitCluster {
                members: cluster.len(),
            });
            units.push(cluster);
            continue;
        }
        match median_split(pois, &cluster, &kernel).or_else(|| farthest_split(pois, &cluster)) {
            Some((keep, split_off)) => {
                stack.push(keep);
                stack.push(split_off);
            }
            None => {
                // With finite positions this is unreachable (a cluster whose
                // members coincide has zero variance and was accepted
                // above), but graceful degradation beats relying on float
                // edge cases: keep the cluster unsplit and record it.
                events.push(Degradation::UnsplitCluster {
                    members: cluster.len(),
                });
                units.push(cluster);
            }
        }
    }
    units
}

/// Whether every member position is finite in both coordinates.
fn finite_cluster(pois: &[Poi], cluster: &[usize]) -> bool {
    cluster
        .iter()
        .all(|&i| pois[i].pos.x.is_finite() && pois[i].pos.y.is_finite())
}

/// Fallback when every KL divergence ties: split off the single POI farthest
/// from the cluster centroid. Returns `None` only when all members share one
/// position — impossible here because such clusters have zero variance and
/// were accepted as fine-grained already.
fn farthest_split(pois: &[Poi], cluster: &[usize]) -> Option<(Vec<usize>, Vec<usize>)> {
    if cluster.len() < 2 {
        return None;
    }
    let pts: Vec<LocalPoint> = cluster.iter().map(|&i| pois[i].pos).collect();
    let center = centroid(&pts)?;
    let (far_pos, far_dist) = cluster
        .iter()
        .enumerate()
        .map(|(pos, &i)| (pos, pois[i].pos.distance_sq(&center)))
        .max_by(|a, b| a.1.total_cmp(&b.1))?;
    if far_dist <= 0.0 {
        return None;
    }
    let mut keep = cluster.to_vec();
    let split_off = vec![keep.swap_remove(far_pos)];
    Some((keep, split_off))
}

/// Definition 3's per-cluster acceptance test as used by Algorithm 2 line 4:
/// single semantic property, or spatial variance below `V_min`.
pub fn is_fine_grained(pois: &[Poi], cluster: &[usize], params: &MinerParams) -> bool {
    single_semantic(pois, cluster) || cluster_variance(pois, cluster) <= params.v_min
}

/// `SingleSemantic(P)`: whether all POIs share one category.
pub fn single_semantic(pois: &[Poi], cluster: &[usize]) -> bool {
    let mut iter = cluster.iter();
    let Some(&first) = iter.next() else {
        return true;
    };
    let cat = pois[first].category;
    iter.all(|&i| pois[i].category == cat)
}

fn cluster_variance(pois: &[Poi], cluster: &[usize]) -> f64 {
    let pts: Vec<LocalPoint> = cluster.iter().map(|&i| pois[i].pos).collect();
    spatial_variance(&pts)
}

/// Eq. 4: the local semantic distribution around POI `i` within the cluster —
/// for each category, the kernel-weighted fraction of cluster mass carrying
/// that category.
pub fn local_distribution(
    pois: &[Poi],
    cluster: &[usize],
    i: usize,
    kernel: &GaussianKernel,
) -> [f64; Category::COUNT] {
    let mut dist = [0.0; Category::COUNT];
    let mut total = 0.0;
    for &j in cluster {
        // Eq. 4 sums over all cluster members including i itself. Distances
        // beyond the kernel cut-off contribute nothing; fall back to a tiny
        // uniform mass so the distribution stays well-defined for sprawling
        // clusters.
        let w = kernel.coeff(pois[j].pos, pois[i].pos).max(KL_EPS);
        dist[pois[j].category as usize] += w;
        total += w;
    }
    for d in &mut dist {
        *d /= total;
    }
    dist
}

/// Eq. 5 with additive smoothing: `KL(P || Q)` over the category alphabet.
pub fn kl_divergence(p: &[f64; Category::COUNT], q: &[f64; Category::COUNT]) -> f64 {
    let p_total: f64 = p.iter().map(|v| v + KL_EPS).sum();
    let q_total: f64 = q.iter().map(|v| v + KL_EPS).sum();
    let mut kl = 0.0;
    for k in 0..Category::COUNT {
        let pk = (p[k] + KL_EPS) / p_total;
        let qk = (q[k] + KL_EPS) / q_total;
        kl += pk * (pk / qk).ln();
    }
    kl.max(0.0) // guard tiny negative rounding
}

/// Lines 7–14 of Algorithm 2: compute KL divergences from the center POI and
/// split at the median. Returns `None` when the split makes no progress.
fn median_split(
    pois: &[Poi],
    cluster: &[usize],
    kernel: &GaussianKernel,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let pts: Vec<LocalPoint> = cluster.iter().map(|&i| pois[i].pos).collect();
    let center = centroid(&pts)?;
    // CenterPoint: member closest to the centroid.
    let center_poi = *cluster.iter().min_by(|&&a, &&b| {
        pois[a]
            .pos
            .distance_sq(&center)
            .total_cmp(&pois[b].pos.distance_sq(&center))
    })?;

    let center_dist = local_distribution(pois, cluster, center_poi, kernel);
    let kls: Vec<f64> = cluster
        .iter()
        .map(|&k| kl_divergence(&center_dist, &local_distribution(pois, cluster, k, kernel)))
        .collect();

    let mut sorted = kls.clone();
    sorted.sort_by(f64::total_cmp);
    // Lower median: with the upper median (`sorted[len / 2]`), any cluster
    // whose upper half ties at the maximum divergence (e.g. two categories in
    // a 2-2 standoff, kls = [0, 0, x, x]) selects that maximum as the cut and
    // `split_off` comes out empty — no progress, and the natural half/half
    // split is lost to the farthest-point fallback. The lower median always
    // strands the strict-maximum members above the cut whenever the
    // divergences are not all equal.
    let median = sorted[(sorted.len() - 1) / 2];

    let mut keep = Vec::new();
    let mut split_off = Vec::new();
    for (pos, &idx) in cluster.iter().enumerate() {
        if kls[pos] > median {
            split_off.push(idx);
        } else {
            keep.push(idx);
        }
    }
    if split_off.is_empty() || keep.is_empty() {
        None
    } else {
        Some((keep, split_off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poi(id: u64, x: f64, y: f64, c: Category) -> Poi {
        Poi::new(id, LocalPoint::new(x, y), c)
    }

    fn params() -> MinerParams {
        MinerParams::default()
    }

    #[test]
    fn single_category_cluster_is_already_a_unit() {
        let pois: Vec<Poi> = (0..8)
            .map(|i| poi(i, i as f64 * 50.0, 0.0, Category::Shop))
            .collect();
        let units = purify(&pois, vec![(0..8).collect()], &params());
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].len(), 8);
    }

    #[test]
    fn tight_mixed_cluster_is_kept_as_skyscraper_unit() {
        // Mixed categories but variance far below V_min (all within 5m).
        let pois = vec![
            poi(0, 0.0, 0.0, Category::Shop),
            poi(1, 2.0, 0.0, Category::Restaurant),
            poi(2, 0.0, 2.0, Category::Business),
            poi(3, 2.0, 2.0, Category::Hotel),
        ];
        let units = purify(&pois, vec![vec![0, 1, 2, 3]], &params());
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].len(), 4);
    }

    #[test]
    fn spatially_separated_mixed_cluster_is_split_by_category() {
        // Two category blobs 300m apart incorrectly fused into one coarse
        // cluster: purification must separate them.
        let mut pois: Vec<Poi> = (0..6)
            .map(|i| {
                poi(
                    i,
                    (i % 3) as f64 * 10.0,
                    (i / 3) as f64 * 10.0,
                    Category::Shop,
                )
            })
            .collect();
        pois.extend((0..6).map(|i| {
            poi(
                10 + i,
                300.0 + (i % 3) as f64 * 10.0,
                (i / 3) as f64 * 10.0,
                Category::Medical,
            )
        }));
        let units = purify(&pois, vec![(0..12).collect()], &params());
        // Every resulting unit must be fine-grained per Definition 3.
        for u in &units {
            assert!(
                is_fine_grained(&pois, u, &params()),
                "unit {u:?} not fine-grained"
            );
        }
        // And the two categories must not share a (spatially loose) unit.
        for u in &units {
            if !single_semantic(&pois, u) {
                let pts: Vec<LocalPoint> = u.iter().map(|&i| pois[i].pos).collect();
                assert!(spatial_variance(&pts) <= params().v_min);
            }
        }
        // All POIs preserved.
        let total: usize = units.iter().map(Vec::len).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn kl_zero_for_identical_distributions() {
        let p = {
            let mut d = [0.0; Category::COUNT];
            d[0] = 0.5;
            d[3] = 0.5;
            d
        };
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_for_different_distributions() {
        let mut p = [0.0; Category::COUNT];
        p[0] = 1.0;
        let mut q = [0.0; Category::COUNT];
        q[1] = 1.0;
        assert!(kl_divergence(&p, &q) > 1.0);
    }

    #[test]
    fn kl_handles_disjoint_supports_without_nan() {
        let mut p = [0.0; Category::COUNT];
        p[0] = 1.0;
        let mut q = [0.0; Category::COUNT];
        q[14] = 1.0;
        let kl = kl_divergence(&p, &q);
        assert!(kl.is_finite() && kl > 0.0);
    }

    #[test]
    fn local_distribution_sums_to_one() {
        let pois = vec![
            poi(0, 0.0, 0.0, Category::Shop),
            poi(1, 10.0, 0.0, Category::Restaurant),
            poi(2, 20.0, 0.0, Category::Shop),
        ];
        let kernel = GaussianKernel::new(100.0);
        let d = local_distribution(&pois, &[0, 1, 2], 0, &kernel);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(d[Category::Shop as usize] > d[Category::Restaurant as usize]);
    }

    #[test]
    fn termination_on_symmetric_mixed_cluster() {
        // Perfectly interleaved two-category grid where KL values may tie:
        // purification must terminate regardless.
        let mut pois = Vec::new();
        for i in 0..16 {
            let cat = if i % 2 == 0 {
                Category::Shop
            } else {
                Category::Restaurant
            };
            pois.push(poi(i, (i % 4) as f64 * 40.0, (i / 4) as f64 * 40.0, cat));
        }
        let units = purify(&pois, vec![(0..16).collect()], &params());
        let total: usize = units.iter().map(Vec::len).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn median_split_handles_tied_upper_half() {
        // Regression: two tight category blobs, two POIs each, 400m apart.
        // The four KL divergences from the center POI pair up as
        // [low, low, high, high]; the old upper median (`sorted[len / 2]`)
        // picked `high`, nothing exceeded it, and the natural 2-2 category
        // split degraded to peeling one POI at a time off the far blob. The
        // lower median must separate the blobs in one cut.
        let pois = vec![
            poi(0, 0.0, 0.0, Category::Shop),
            poi(1, 10.0, 0.0, Category::Shop),
            poi(2, 400.0, 0.0, Category::Medical),
            poi(3, 410.0, 0.0, Category::Medical),
        ];
        let kernel = GaussianKernel::new(params().r3sigma);
        let (keep, split_off) =
            median_split(&pois, &[0, 1, 2, 3], &kernel).expect("median split must make progress");
        let mut sides = [keep, split_off];
        sides.sort();
        assert_eq!(sides, [vec![0, 1], vec![2, 3]]);

        // End to end, purification resolves the pair into the two
        // single-category units without leaning on the farthest-point
        // fallback's singleton peeling.
        let units = purify(&pois, vec![vec![0, 1, 2, 3]], &params());
        let mut units = units;
        units.iter_mut().for_each(|u| u.sort());
        units.sort();
        assert_eq!(units, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn median_split_still_declines_on_full_tie() {
        // All divergences equal (single category ⇒ every local distribution
        // is the same point mass): no cut can make progress and the split
        // must report `None` rather than emit an empty side.
        let pois: Vec<Poi> = (0..4)
            .map(|i| poi(i, i as f64 * 10.0, 0.0, Category::Shop))
            .collect();
        let kernel = GaussianKernel::new(params().r3sigma);
        assert!(median_split(&pois, &[0, 1, 2, 3], &kernel).is_none());
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let pois = vec![poi(0, 0.0, 0.0, Category::Shop)];
        assert!(purify(&pois, vec![], &params()).is_empty());
        let units = purify(&pois, vec![vec![], vec![0]], &params());
        assert_eq!(units, vec![vec![0]]);
    }

    #[test]
    fn non_finite_cluster_is_kept_unsplit_with_degradation() {
        // Mixed categories, one NaN coordinate: variance is NaN, so the
        // cluster is not fine-grained, and no split can reason about it.
        let pois = vec![
            poi(0, 0.0, 0.0, Category::Shop),
            poi(1, f64::NAN, 0.0, Category::Restaurant),
            poi(2, 500.0, 0.0, Category::Business),
        ];
        let mut events = Vec::new();
        let units = purify_tracked(&pois, vec![vec![0, 1, 2]], &params(), &mut events);
        assert_eq!(units, vec![vec![0, 1, 2]], "cluster must survive unsplit");
        assert_eq!(events, vec![Degradation::UnsplitCluster { members: 3 }]);
    }

    #[test]
    fn infinite_coordinates_do_not_panic() {
        let pois = vec![
            poi(0, f64::INFINITY, 0.0, Category::Shop),
            poi(1, 0.0, f64::NEG_INFINITY, Category::Medical),
            poi(2, 100.0, 100.0, Category::Hotel),
            poi(3, 600.0, 0.0, Category::Restaurant),
        ];
        let mut events = Vec::new();
        let units = purify_tracked(&pois, vec![vec![0, 1, 2, 3]], &params(), &mut events);
        let total: usize = units.iter().map(Vec::len).sum();
        assert_eq!(total, 4, "no POI may be lost");
        assert!(!events.is_empty());
    }

    #[test]
    fn finite_clusters_report_no_degradation() {
        let pois: Vec<Poi> = (0..8)
            .map(|i| poi(i, i as f64 * 50.0, 0.0, Category::Shop))
            .collect();
        let mut events = Vec::new();
        purify_tracked(&pois, vec![(0..8).collect()], &params(), &mut events);
        assert!(events.is_empty());
    }
}
