//! Domain types: POIs, semantic categories and tag sets, stay points, raw
//! and semantic trajectories (paper Definitions 1, 2, 5, 6).

use pm_geo::LocalPoint;
use std::fmt;

/// Seconds since the start of the simulated/observed epoch.
///
/// The epoch is aligned so that `t = 0` is 00:00 on a Monday, which makes
/// time-of-week bucketing (Fig. 14) a pure modulo computation.
pub type Timestamp = i64;

/// Seconds in a day / a week, shared by schedule and bucketing code.
pub const DAY_SECS: Timestamp = 86_400;
/// Seconds in a week.
pub const WEEK_SECS: Timestamp = 7 * DAY_SECS;

/// The 15 major POI categories of the Shanghai AMAP dataset (paper Table 3),
/// ordered by their share of the dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// Residential compounds and homes (18.09% of POIs).
    Residence = 0,
    /// Shops and markets (16.36%).
    Shop = 1,
    /// Business and office buildings (15.00%).
    Business = 2,
    /// Restaurants (11.30%).
    Restaurant = 3,
    /// Entertainment venues (10.03%).
    Entertainment = 4,
    /// Public services (9.40%).
    PublicService = 5,
    /// Traffic stations — metro, rail, airport terminals (7.55%).
    TrafficStation = 6,
    /// Technology and education (2.67%).
    Education = 7,
    /// Sports facilities (1.94%).
    Sports = 8,
    /// Government agencies (1.88%).
    Government = 9,
    /// Industrial sites (1.47%).
    Industry = 10,
    /// Financial services (1.43%).
    Financial = 11,
    /// Medical services — hospitals, clinics, pharmacies (1.32%).
    Medical = 12,
    /// Accommodation and hotels (1.06%).
    Hotel = 13,
    /// Tourism attractions (0.51%).
    Tourism = 14,
}

impl Category {
    /// All categories, in Table 3 order.
    pub const ALL: [Category; 15] = [
        Category::Residence,
        Category::Shop,
        Category::Business,
        Category::Restaurant,
        Category::Entertainment,
        Category::PublicService,
        Category::TrafficStation,
        Category::Education,
        Category::Sports,
        Category::Government,
        Category::Industry,
        Category::Financial,
        Category::Medical,
        Category::Hotel,
        Category::Tourism,
    ];

    /// Number of major categories.
    pub const COUNT: usize = 15;

    /// Table 3 share of each category in the Shanghai POI dataset, summing
    /// to 1 (the paper's percentages renormalized).
    pub fn share(self) -> f64 {
        const SHARES: [f64; 15] = [
            0.1809, 0.1636, 0.1500, 0.1130, 0.1003, 0.0940, 0.0755, 0.0267, 0.0194, 0.0188, 0.0147,
            0.0143, 0.0132, 0.0106, 0.0051,
        ];
        SHARES[self as usize] / 1.0001 // raw shares sum to 1.0001 in Table 3
    }

    /// Human-readable name matching Table 3.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 15] = [
            "Residence",
            "Shop & Market",
            "Business & Office",
            "Restaurant",
            "Entertainment",
            "Public Service",
            "Traffic Stations",
            "Technology & Education",
            "Sports",
            "Government Agency",
            "Industry",
            "Financial Service",
            "Medical Service",
            "Accommodation & Hotel",
            "Tourism",
        ];
        NAMES[self as usize]
    }

    /// Category from its `repr` index.
    ///
    /// # Panics
    /// Panics if `idx >= Category::COUNT`.
    pub fn from_index(idx: usize) -> Category {
        Category::ALL[idx]
    }

    /// Number of minor sub-types under each major category; the totals sum
    /// to 98 minor types as in the paper's dataset description.
    pub fn minor_count(self) -> u8 {
        const MINORS: [u8; 15] = [5, 12, 8, 14, 10, 8, 6, 7, 5, 3, 4, 4, 6, 3, 3];
        MINORS[self as usize]
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of semantic tags (major categories) — the semantic property `s` of
/// the paper, attached to stay points and semantic units.
///
/// Backed by a 16-bit mask: set algebra, subset tests (Definition 7's
/// semantic-containment condition) and tag-set cosine similarity (Eq. 11)
/// are all branch-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tags(u16);

impl Tags {
    /// The empty tag set.
    pub const EMPTY: Tags = Tags(0);

    /// A singleton tag set.
    pub fn only(c: Category) -> Tags {
        Tags(1 << c as u8)
    }

    /// Builds a tag set from an iterator of categories (also available via
    /// the `FromIterator` impl / `collect()`).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Category>>(iter: I) -> Tags {
        iter.into_iter().fold(Tags::EMPTY, |t, c| t.with(c))
    }

    /// Returns this set with `c` added.
    #[must_use]
    pub fn with(self, c: Category) -> Tags {
        Tags(self.0 | (1 << c as u8))
    }

    /// Whether `c` is in the set.
    pub fn contains(self, c: Category) -> bool {
        self.0 & (1 << c as u8) != 0
    }

    /// Whether `other` is a subset of `self` (`self.s ⊇ other.s`).
    pub fn is_superset(self, other: Tags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set union.
    pub fn union(self, other: Tags) -> Tags {
        Tags(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: Tags) -> Tags {
        Tags(self.0 & other.0)
    }

    /// Number of tags in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the categories in the set in `repr` order.
    pub fn iter(self) -> impl Iterator<Item = Category> {
        Category::ALL.into_iter().filter(move |c| self.contains(*c))
    }

    /// Binary-vector cosine similarity between two tag sets (Eq. 11):
    /// `|A ∩ B| / sqrt(|A| * |B|)`. Empty sets have similarity 0 (or 1 when
    /// both are empty, by the convention that identical sets are maximally
    /// similar).
    pub fn cosine(self, other: Tags) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 1.0;
        }
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        self.intersection(other).len() as f64 / ((self.len() * other.len()) as f64).sqrt()
    }
}

impl fmt::Display for Tags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Category> for Tags {
    fn from_iter<I: IntoIterator<Item = Category>>(iter: I) -> Tags {
        Tags::from_iter(iter)
    }
}

/// A Point of Interest (Definition 2): `p^I = {id, p, s}`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poi {
    /// Physical identity of the venue.
    pub id: u64,
    /// Location in the local meter frame.
    pub pos: LocalPoint,
    /// Major semantic category.
    pub category: Category,
    /// Minor sub-type within the major category (dataset realism only; the
    /// mining pipeline operates on major categories).
    pub minor: u8,
}

impl Poi {
    /// Creates a POI with minor type 0.
    pub fn new(id: u64, pos: LocalPoint, category: Category) -> Poi {
        Poi {
            id,
            pos,
            category,
            minor: 0,
        }
    }
}

/// A raw GPS fix: location + timestamp (the `(p, t)` of Definition 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpsPoint {
    /// Location in the local meter frame.
    pub pos: LocalPoint,
    /// Fix time.
    pub time: Timestamp,
}

impl GpsPoint {
    /// Creates a fix.
    pub fn new(pos: LocalPoint, time: Timestamp) -> GpsPoint {
        GpsPoint { pos, time }
    }
}

/// A raw GPS trajectory (Definition 1): a time-ordered sequence of fixes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GpsTrajectory {
    /// The fixes, in non-decreasing time order.
    pub points: Vec<GpsPoint>,
}

impl GpsTrajectory {
    /// Creates a trajectory, asserting time monotonicity in debug builds.
    pub fn new(points: Vec<GpsPoint>) -> GpsTrajectory {
        debug_assert!(
            points.windows(2).all(|w| w[0].time <= w[1].time),
            "GPS fixes must be time-ordered"
        );
        GpsTrajectory { points }
    }

    /// Number of fixes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no fixes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A stay point (Definition 5): where a commuter stopped to perform an
/// activity. `tags` is the semantic property `s`, unknown ([`Tags::EMPTY`])
/// until semantic recognition fills it in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StayPoint {
    /// Representative location of the stay.
    pub pos: LocalPoint,
    /// Representative time of the stay.
    pub time: Timestamp,
    /// Semantic property; empty until recognized.
    pub tags: Tags,
    /// The dominant category within `tags`, when the recognizer knows one
    /// (CSD: the winning unit's strongest category; ROI: the majority of
    /// the annotating POIs). Drives the sequence-mining item; `tags` as a
    /// whole drives the consistency metric (Eq. 11).
    pub primary: Option<Category>,
}

impl StayPoint {
    /// Creates a stay point with known tags; the primary defaults to the
    /// lowest category in the set (exact for singleton tag sets).
    pub fn new(pos: LocalPoint, time: Timestamp, tags: Tags) -> StayPoint {
        StayPoint {
            pos,
            time,
            tags,
            primary: tags.iter().next(),
        }
    }

    /// Creates a stay point whose semantics are not yet recognized.
    pub fn untagged(pos: LocalPoint, time: Timestamp) -> StayPoint {
        StayPoint {
            pos,
            time,
            tags: Tags::EMPTY,
            primary: None,
        }
    }

    /// The category representing this stay in a mined sequence: the
    /// recognizer-chosen primary, falling back to the lowest tag.
    pub fn primary_category(&self) -> Option<Category> {
        self.primary.or_else(|| self.tags.iter().next())
    }
}

/// A semantic trajectory (Definition 6): the stay points derived from one
/// GPS trajectory (or, for the taxi corpus, the linked pick-up/drop-off
/// chain of one passenger-day).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SemanticTrajectory {
    /// The stay points in time order.
    pub stays: Vec<StayPoint>,
    /// Payment-card passenger id when known (20% of the taxi corpus).
    pub passenger: Option<u64>,
}

impl SemanticTrajectory {
    /// Creates an anonymous semantic trajectory.
    pub fn new(stays: Vec<StayPoint>) -> SemanticTrajectory {
        debug_assert!(
            stays.windows(2).all(|w| w[0].time <= w[1].time),
            "stay points must be time-ordered"
        );
        SemanticTrajectory {
            stays,
            passenger: None,
        }
    }

    /// Attaches a passenger id.
    #[must_use]
    pub fn with_passenger(mut self, id: u64) -> SemanticTrajectory {
        self.passenger = Some(id);
        self
    }

    /// Number of stay points.
    pub fn len(&self) -> usize {
        self.stays.len()
    }

    /// Whether the trajectory has no stay points.
    pub fn is_empty(&self) -> bool {
        self.stays.is_empty()
    }

    /// The category-id sequence of this trajectory, for sequence mining.
    /// Multi-tag stay points contribute their lowest category id; untagged
    /// ones are skipped.
    pub fn category_sequence(&self) -> Vec<u32> {
        self.stays
            .iter()
            .filter_map(|sp| sp.primary_category().map(|c| c as u32))
            .collect()
    }
}

/// Time-of-week buckets used by the demonstration (Fig. 14).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WeekBucket {
    /// Monday–Friday, 05:00–11:00.
    WeekdayMorning,
    /// Monday–Friday, 11:00–17:00.
    WeekdayAfternoon,
    /// Monday–Friday, 17:00–24:00 (plus 00:00–05:00 spillover).
    WeekdayNight,
    /// Saturday–Sunday, 05:00–11:00.
    WeekendMorning,
    /// Saturday–Sunday, 11:00–17:00.
    WeekendAfternoon,
    /// Saturday–Sunday, 17:00–24:00 (plus 00:00–05:00 spillover).
    WeekendNight,
}

impl WeekBucket {
    /// All buckets in display order.
    pub const ALL: [WeekBucket; 6] = [
        WeekBucket::WeekdayMorning,
        WeekBucket::WeekdayAfternoon,
        WeekBucket::WeekdayNight,
        WeekBucket::WeekendMorning,
        WeekBucket::WeekendAfternoon,
        WeekBucket::WeekendNight,
    ];

    /// Buckets a timestamp (epoch `t = 0` is Monday 00:00).
    pub fn of(t: Timestamp) -> WeekBucket {
        let tw = t.rem_euclid(WEEK_SECS);
        let day = tw / DAY_SECS; // 0 = Monday
        let hour = (tw % DAY_SECS) / 3600;
        let weekend = day >= 5;
        let slot = match hour {
            5..=10 => 0,
            11..=16 => 1,
            _ => 2,
        };
        match (weekend, slot) {
            (false, 0) => WeekBucket::WeekdayMorning,
            (false, 1) => WeekBucket::WeekdayAfternoon,
            (false, _) => WeekBucket::WeekdayNight,
            (true, 0) => WeekBucket::WeekendMorning,
            (true, 1) => WeekBucket::WeekendAfternoon,
            (true, _) => WeekBucket::WeekendNight,
        }
    }

    /// Display label matching the paper's Fig. 14 captions.
    pub fn label(self) -> &'static str {
        match self {
            WeekBucket::WeekdayMorning => "weekday morning",
            WeekBucket::WeekdayAfternoon => "weekday afternoon",
            WeekBucket::WeekdayNight => "weekday night",
            WeekBucket::WeekendMorning => "weekend morning",
            WeekBucket::WeekendAfternoon => "weekend afternoon",
            WeekBucket::WeekendNight => "weekend night",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_shares_sum_to_one() {
        let total: f64 = Category::ALL.iter().map(|c| c.share()).sum();
        assert!((total - 1.0).abs() < 1e-3, "total {total}");
    }

    #[test]
    fn category_minor_types_sum_to_98() {
        let total: u32 = Category::ALL.iter().map(|c| c.minor_count() as u32).sum();
        assert_eq!(total, 98);
    }

    #[test]
    fn category_roundtrip_from_index() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(Category::from_index(i), *c);
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn tags_set_algebra() {
        let a = Tags::only(Category::Shop).with(Category::Restaurant);
        let b = Tags::only(Category::Shop);
        assert!(a.is_superset(b));
        assert!(!b.is_superset(a));
        assert_eq!(a.intersection(b), b);
        assert_eq!(a.union(b), a);
        assert_eq!(a.len(), 2);
        assert!(a.contains(Category::Restaurant));
        assert!(!a.contains(Category::Medical));
    }

    #[test]
    fn tags_iter_and_from_iter() {
        let t: Tags = [Category::Medical, Category::Residence]
            .into_iter()
            .collect();
        let cats: Vec<Category> = t.iter().collect();
        assert_eq!(cats, vec![Category::Residence, Category::Medical]);
    }

    #[test]
    fn tags_cosine_identical_and_disjoint() {
        let a = Tags::only(Category::Shop).with(Category::Restaurant);
        assert!((a.cosine(a) - 1.0).abs() < 1e-12);
        let b = Tags::only(Category::Medical);
        assert_eq!(a.cosine(b), 0.0);
        assert_eq!(Tags::EMPTY.cosine(Tags::EMPTY), 1.0);
        assert_eq!(Tags::EMPTY.cosine(a), 0.0);
    }

    #[test]
    fn tags_cosine_partial_overlap() {
        let a = Tags::only(Category::Shop).with(Category::Restaurant);
        let b = Tags::only(Category::Shop);
        // |A∩B| = 1, |A| = 2, |B| = 1 -> 1/sqrt(2)
        assert!((a.cosine(b) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn category_sequence_skips_untagged() {
        let st = SemanticTrajectory::new(vec![
            StayPoint::new(LocalPoint::ORIGIN, 0, Tags::only(Category::Residence)),
            StayPoint::untagged(LocalPoint::ORIGIN, 10),
            StayPoint::new(LocalPoint::ORIGIN, 20, Tags::only(Category::Business)),
        ]);
        assert_eq!(
            st.category_sequence(),
            vec![Category::Residence as u32, Category::Business as u32]
        );
    }

    #[test]
    fn week_bucketing() {
        // Monday 08:00.
        assert_eq!(WeekBucket::of(8 * 3600), WeekBucket::WeekdayMorning);
        // Monday 13:00.
        assert_eq!(WeekBucket::of(13 * 3600), WeekBucket::WeekdayAfternoon);
        // Friday 23:00.
        assert_eq!(
            WeekBucket::of(4 * DAY_SECS + 23 * 3600),
            WeekBucket::WeekdayNight
        );
        // Saturday 09:00.
        assert_eq!(
            WeekBucket::of(5 * DAY_SECS + 9 * 3600),
            WeekBucket::WeekendMorning
        );
        // Sunday 15:00.
        assert_eq!(
            WeekBucket::of(6 * DAY_SECS + 15 * 3600),
            WeekBucket::WeekendAfternoon
        );
        // Sunday 02:00 (night spillover).
        assert_eq!(
            WeekBucket::of(6 * DAY_SECS + 2 * 3600),
            WeekBucket::WeekendNight
        );
        // Second week wraps.
        assert_eq!(
            WeekBucket::of(WEEK_SECS + 8 * 3600),
            WeekBucket::WeekdayMorning
        );
    }

    #[test]
    fn tags_display_lists_names() {
        let t = Tags::only(Category::Shop).with(Category::Medical);
        let s = format!("{t}");
        assert!(s.contains("Shop & Market") && s.contains("Medical Service"));
    }
}
