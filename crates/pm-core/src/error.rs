//! Unified error taxonomy ([`MinerError`]) and non-fatal degradation events
//! ([`Degradation`]) for the whole pipeline.
//!
//! The design splits failure into two tiers:
//!
//! - **Errors** abort a stage and propagate as `Result<_, MinerError>`. They
//!   are reserved for conditions no reasonable recovery exists for — a
//!   nonsensical parameter set, or malformed input the caller asked us to
//!   treat strictly. Each variant names the pipeline stage that raised it so
//!   a CLI (or a log line) can say *where* a run died without parsing
//!   message text.
//! - **Degradations** record recoverable trouble the pipeline worked around:
//!   non-finite coordinates filtered out, a degenerate cluster kept unsplit,
//!   quarantined input lines. The run continues; the events are surfaced
//!   through [`CitySemanticDiagram::degradations`] and the `*_tracked`
//!   function variants so callers can audit what was silently tolerated.
//!
//! Everything here is `std`-only: `MinerError` implements
//! [`std::error::Error`] and composes with `?` and `Box<dyn Error>` without
//! any external crates.
//!
//! [`CitySemanticDiagram::degradations`]: crate::construct::CitySemanticDiagram::degradations

use std::fmt;

/// A fatal pipeline error, tagged by the stage that raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinerError {
    /// A [`MinerParams`](crate::params::MinerParams) bound violation.
    /// `field` names the offending knob (or knob group).
    Params {
        field: &'static str,
        message: String,
    },
    /// CSD construction (Algorithms 1–2 and merging) could not proceed.
    Construct { message: String },
    /// Semantic recognition (stay-point detection / Algorithm 3) could not
    /// proceed.
    Recognize { message: String },
    /// Pattern extraction (PrefixSpan / Algorithm 4) could not proceed.
    Extract { message: String },
    /// Input ingestion failed; carries the upstream I/O or parse error
    /// rendered as text so `pm-core` needs no dependency on `pm-io`.
    Ingest { message: String },
}

impl MinerError {
    /// Parameter-validation error for one named field.
    pub fn params(field: &'static str, message: impl Into<String>) -> Self {
        MinerError::Params {
            field,
            message: message.into(),
        }
    }

    /// Construction-stage error.
    pub fn construct(message: impl Into<String>) -> Self {
        MinerError::Construct {
            message: message.into(),
        }
    }

    /// Recognition-stage error.
    pub fn recognize(message: impl Into<String>) -> Self {
        MinerError::Recognize {
            message: message.into(),
        }
    }

    /// Extraction-stage error.
    pub fn extract(message: impl Into<String>) -> Self {
        MinerError::Extract {
            message: message.into(),
        }
    }

    /// Ingestion-stage error.
    pub fn ingest(message: impl Into<String>) -> Self {
        MinerError::Ingest {
            message: message.into(),
        }
    }

    /// Short machine-checkable name of the stage that raised the error.
    pub fn stage(&self) -> &'static str {
        match self {
            MinerError::Params { .. } => "params",
            MinerError::Construct { .. } => "construct",
            MinerError::Recognize { .. } => "recognize",
            MinerError::Extract { .. } => "extract",
            MinerError::Ingest { .. } => "ingest",
        }
    }
}

impl fmt::Display for MinerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinerError::Params { field, message } => {
                write!(f, "invalid parameter `{field}`: {message}")
            }
            MinerError::Construct { message } => write!(f, "CSD construction failed: {message}"),
            MinerError::Recognize { message } => {
                write!(f, "semantic recognition failed: {message}")
            }
            MinerError::Extract { message } => write!(f, "pattern extraction failed: {message}"),
            MinerError::Ingest { message } => write!(f, "ingestion failed: {message}"),
        }
    }
}

impl std::error::Error for MinerError {}

/// A recoverable event: the pipeline hit degenerate input and fell back to a
/// defined, lossy behaviour instead of failing. Counts are per event, and
/// events of the same kind are merged by the collection helpers below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Algorithm 2 could not split a non-fine-grained cluster (degenerate
    /// geometry such as non-finite coordinates); the cluster was kept
    /// unsplit. `members` is the cluster size.
    UnsplitCluster { members: usize },
    /// POIs with non-finite coordinates were dropped before construction.
    NonFinitePois { dropped: usize },
    /// Stay locations with non-finite coordinates were excluded from the
    /// popularity model.
    NonFiniteStayLocations { dropped: usize },
    /// Stay points left untagged during recognition because their position
    /// is non-finite (no range query is meaningful).
    UntaggedNonFiniteStays { count: usize },
    /// Raw GPS fixes with non-finite coordinates dropped before stay-point
    /// detection.
    DroppedGpsFixes { count: usize },
    /// Stays with non-finite positions skipped when building the category
    /// sequences for pattern extraction.
    SkippedExtractionStays { count: usize },
}

impl Degradation {
    /// Every kind name, in declaration order — the full taxonomy a report
    /// should list even when a run was clean.
    pub const KINDS: [&'static str; 6] = [
        "unsplit_clusters",
        "non_finite_pois",
        "non_finite_stay_locations",
        "untagged_non_finite_stays",
        "dropped_gps_fixes",
        "skipped_extraction_stays",
    ];

    /// Stable snake_case name of the event kind (the counter key used under
    /// the `degradation.` prefix in run reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Degradation::UnsplitCluster { .. } => Self::KINDS[0],
            Degradation::NonFinitePois { .. } => Self::KINDS[1],
            Degradation::NonFiniteStayLocations { .. } => Self::KINDS[2],
            Degradation::UntaggedNonFiniteStays { .. } => Self::KINDS[3],
            Degradation::DroppedGpsFixes { .. } => Self::KINDS[4],
            Degradation::SkippedExtractionStays { .. } => Self::KINDS[5],
        }
    }

    /// The number of records the event covers.
    pub fn count(&self) -> usize {
        match *self {
            Degradation::UnsplitCluster { members } => members,
            Degradation::NonFinitePois { dropped } => dropped,
            Degradation::NonFiniteStayLocations { dropped } => dropped,
            Degradation::UntaggedNonFiniteStays { count } => count,
            Degradation::DroppedGpsFixes { count } => count,
            Degradation::SkippedExtractionStays { count } => count,
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Degradation::UnsplitCluster { members } => {
                write!(f, "kept a degenerate {members}-POI cluster unsplit")
            }
            Degradation::NonFinitePois { dropped } => {
                write!(f, "dropped {dropped} POI(s) with non-finite coordinates")
            }
            Degradation::NonFiniteStayLocations { dropped } => write!(
                f,
                "excluded {dropped} non-finite stay location(s) from the popularity model"
            ),
            Degradation::UntaggedNonFiniteStays { count } => {
                write!(f, "left {count} non-finite stay point(s) untagged")
            }
            Degradation::DroppedGpsFixes { count } => {
                write!(f, "dropped {count} non-finite GPS fix(es)")
            }
            Degradation::SkippedExtractionStays { count } => write!(
                f,
                "skipped {count} non-finite stay point(s) during extraction"
            ),
        }
    }
}

/// Tallies degradation events into `obs` under the `degradation.` prefix.
///
/// Every kind is registered (at zero) first, so a report always lists the
/// full taxonomy — a clean run shows six explicit zeros rather than an
/// absence that could mean "not instrumented".
pub fn record_degradations(obs: &pm_obs::Obs, events: &[Degradation]) {
    if !obs.is_enabled() {
        return;
    }
    for kind in Degradation::KINDS {
        obs.incr(&format!("degradation.{kind}"), 0);
    }
    for e in events {
        obs.incr(&format!("degradation.{}", e.kind()), e.count() as u64);
    }
}

/// Renders a degradation list as one summary line (empty string when clean).
pub fn summarize_degradations(events: &[Degradation]) -> String {
    events
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_stage() {
        let e = MinerError::params("alpha", "must be in (0, 1], got 2");
        assert_eq!(e.stage(), "params");
        assert!(e.to_string().contains("alpha"));
        let e = MinerError::construct("no POIs");
        assert_eq!(e.stage(), "construct");
        assert!(e.to_string().contains("construction"));
        assert_eq!(MinerError::recognize("x").stage(), "recognize");
        assert_eq!(MinerError::extract("x").stage(), "extract");
        assert_eq!(MinerError::ingest("x").stage(), "ingest");
    }

    #[test]
    fn error_is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&MinerError::extract("boom"));
        let boxed: Box<dyn std::error::Error> = Box::new(MinerError::ingest("bad line"));
        assert!(boxed.to_string().contains("ingestion"));
    }

    #[test]
    fn degradation_counts_and_summary() {
        let events = vec![
            Degradation::NonFinitePois { dropped: 3 },
            Degradation::UnsplitCluster { members: 7 },
        ];
        assert_eq!(events[0].count(), 3);
        assert_eq!(events[1].count(), 7);
        let s = summarize_degradations(&events);
        assert!(s.contains("3 POI(s)"));
        assert!(s.contains("7-POI cluster"));
        assert!(summarize_degradations(&[]).is_empty());
    }
}
