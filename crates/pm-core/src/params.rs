//! Every tunable of the pipeline in one place, defaulted to the paper's
//! published settings (§4.1 "In terms of parameter settings …" and §5
//! "Parameter Setting").

/// Parameters of CSD construction, semantic recognition and pattern
/// extraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinerParams {
    // ---- Gaussian popularity model (Eq. 2–3) -------------------------------
    /// `R_3sigma`: the 3-sigma radius of the GPS-noise Gaussian, in meters.
    /// Also the range-search radius of semantic recognition (Algorithm 3).
    pub r3sigma: f64,

    // ---- Algorithm 1: popularity-based clustering --------------------------
    /// `MinPts_p`: minimum POIs per coarse cluster.
    pub min_pts: usize,
    /// `eps_p`: the POI range-search radius in meters.
    pub eps_p: f64,
    /// `d_v`: vertical-overlap distance in meters — POIs this close are
    /// grouped regardless of category (multi-purpose skyscrapers).
    pub d_v: f64,
    /// `alpha`: popularity-ratio threshold; neighbours join a cluster only
    /// when their popularity ratio lies within `[alpha, 1/alpha]`.
    pub alpha: f64,

    // ---- Definition 3 / Algorithm 2: purification --------------------------
    /// `V_min`: spatial variance (m²) under which a mixed cluster still
    /// counts as a fine-grained unit (the skyscraper case).
    pub v_min: f64,
    /// `N_min`: minimum unit size in Definition 3.
    pub n_min: usize,

    // ---- Semantic unit merging ---------------------------------------------
    /// Cosine-similarity threshold above which nearby units merge (0.9 in
    /// the paper's experiments).
    pub merge_cos: f64,
    /// How far apart (meters, nearest-member distance) two units may be and
    /// still count as "nearby" for merging. The paper leaves this implicit
    /// ("each pair of nearby semantic units"); we default to `eps_p`, the
    /// same neighbourhood scale as clustering.
    pub merge_dist: f64,

    // ---- Definition 5: stay-point detection --------------------------------
    /// `theta_t`: minimum dwell duration in seconds.
    pub theta_t: i64,
    /// `theta_d`: maximum roaming radius in meters during a dwell.
    pub theta_d: f64,

    // ---- Algorithm 4 / Definition 11: pattern extraction -------------------
    /// `sigma`: support threshold — minimum trajectories per pattern.
    pub sigma: usize,
    /// `delta_t`: temporal constraint in seconds — maximum time interval
    /// between adjacent stay points.
    pub delta_t: i64,
    /// `rho`: density threshold in points per square meter.
    pub rho: f64,
    /// Minimum pattern length in stay points (trips have at least 2).
    pub min_pattern_len: usize,
    /// Maximum pattern length to mine.
    pub max_pattern_len: usize,
}

impl Default for MinerParams {
    fn default() -> Self {
        Self {
            r3sigma: 100.0,
            min_pts: 5,
            eps_p: 30.0,
            d_v: 15.0,
            alpha: 0.8,
            v_min: 400.0, // 20m std-dev: a single building footprint
            n_min: 5,
            merge_cos: 0.9,
            merge_dist: 30.0,
            theta_t: 20 * 60,
            theta_d: 100.0,
            sigma: 50,
            delta_t: 60 * 60,
            rho: 0.002,
            min_pattern_len: 2,
            max_pattern_len: 5,
        }
    }
}

impl MinerParams {
    /// Validates parameter sanity; call before a long pipeline run to fail
    /// fast on nonsensical configurations.
    pub fn validate(&self) -> Result<(), String> {
        fn pos(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be positive, got {v}"))
            }
        }
        pos("r3sigma", self.r3sigma)?;
        pos("eps_p", self.eps_p)?;
        pos("d_v", self.d_v)?;
        pos("v_min", self.v_min)?;
        pos("rho", self.rho)?;
        pos("theta_d", self.theta_d)?;
        pos("merge_dist", self.merge_dist)?;
        if !(0.0 < self.alpha && self.alpha <= 1.0) {
            return Err(format!("alpha must be in (0, 1], got {}", self.alpha));
        }
        if !(0.0 < self.merge_cos && self.merge_cos <= 1.0) {
            return Err(format!(
                "merge_cos must be in (0, 1], got {}",
                self.merge_cos
            ));
        }
        if self.min_pts == 0 || self.n_min == 0 || self.sigma == 0 {
            return Err("min_pts, n_min and sigma must be at least 1".into());
        }
        if self.theta_t <= 0 || self.delta_t <= 0 {
            return Err("theta_t and delta_t must be positive".into());
        }
        if self.min_pattern_len == 0 || self.max_pattern_len < self.min_pattern_len {
            return Err("pattern length bounds are inconsistent".into());
        }
        Ok(())
    }

    /// Returns a copy with a different support threshold (Fig. 11 sweeps).
    #[must_use]
    pub fn with_sigma(mut self, sigma: usize) -> Self {
        self.sigma = sigma;
        self
    }

    /// Returns a copy with a different density threshold (Fig. 12 sweeps).
    #[must_use]
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Returns a copy with a different temporal constraint (Fig. 13 sweeps).
    #[must_use]
    pub fn with_delta_t(mut self, delta_t: i64) -> Self {
        self.delta_t = delta_t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = MinerParams::default();
        assert_eq!(p.r3sigma, 100.0);
        assert_eq!(p.d_v, 15.0);
        assert_eq!(p.min_pts, 5);
        assert_eq!(p.eps_p, 30.0);
        assert_eq!(p.alpha, 0.8);
        assert_eq!(p.merge_cos, 0.9);
        assert_eq!(p.sigma, 50);
        assert_eq!(p.delta_t, 3600);
        assert_eq!(p.rho, 0.002);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn sweep_builders() {
        let p = MinerParams::default()
            .with_sigma(75)
            .with_rho(0.004)
            .with_delta_t(900);
        assert_eq!(p.sigma, 75);
        assert_eq!(p.rho, 0.004);
        assert_eq!(p.delta_t, 900);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(MinerParams {
            alpha: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MinerParams {
            r3sigma: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MinerParams {
            sigma: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MinerParams {
            merge_cos: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MinerParams {
            min_pattern_len: 3,
            max_pattern_len: 2,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MinerParams {
            theta_t: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
