//! Every tunable of the pipeline in one place, defaulted to the paper's
//! published settings (§4.1 "In terms of parameter settings …" and §5
//! "Parameter Setting").

use crate::error::MinerError;

/// Parameters of CSD construction, semantic recognition and pattern
/// extraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinerParams {
    // ---- Gaussian popularity model (Eq. 2–3) -------------------------------
    /// `R_3sigma`: the 3-sigma radius of the GPS-noise Gaussian, in meters.
    /// Also the range-search radius of semantic recognition (Algorithm 3).
    pub r3sigma: f64,

    // ---- Algorithm 1: popularity-based clustering --------------------------
    /// `MinPts_p`: minimum POIs per coarse cluster.
    pub min_pts: usize,
    /// `eps_p`: the POI range-search radius in meters.
    pub eps_p: f64,
    /// `d_v`: vertical-overlap distance in meters — POIs this close are
    /// grouped regardless of category (multi-purpose skyscrapers).
    pub d_v: f64,
    /// `alpha`: popularity-ratio threshold; neighbours join a cluster only
    /// when their popularity ratio lies within `[alpha, 1/alpha]`.
    pub alpha: f64,

    // ---- Definition 3 / Algorithm 2: purification --------------------------
    /// `V_min`: spatial variance (m²) under which a mixed cluster still
    /// counts as a fine-grained unit (the skyscraper case).
    pub v_min: f64,
    /// `N_min`: minimum unit size in Definition 3.
    pub n_min: usize,

    // ---- Semantic unit merging ---------------------------------------------
    /// Cosine-similarity threshold above which nearby units merge (0.9 in
    /// the paper's experiments).
    pub merge_cos: f64,
    /// How far apart (meters, nearest-member distance) two units may be and
    /// still count as "nearby" for merging. The paper leaves this implicit
    /// ("each pair of nearby semantic units"); we default to `eps_p`, the
    /// same neighbourhood scale as clustering.
    pub merge_dist: f64,

    // ---- Definition 5: stay-point detection --------------------------------
    /// `theta_t`: minimum dwell duration in seconds.
    pub theta_t: i64,
    /// `theta_d`: maximum roaming radius in meters during a dwell.
    pub theta_d: f64,

    // ---- Algorithm 4 / Definition 11: pattern extraction -------------------
    /// `sigma`: support threshold — minimum trajectories per pattern.
    pub sigma: usize,
    /// `delta_t`: temporal constraint in seconds — maximum time interval
    /// between adjacent stay points.
    pub delta_t: i64,
    /// `rho`: density threshold in points per square meter.
    pub rho: f64,
    /// Minimum pattern length in stay points (trips have at least 2).
    pub min_pattern_len: usize,
    /// Maximum pattern length to mine.
    pub max_pattern_len: usize,

    // ---- Execution (no effect on results) ----------------------------------
    /// Worker threads for the data-parallel pipeline stages; `0` means
    /// "use [`std::thread::available_parallelism`]". Results are
    /// bit-identical for every value (DESIGN.md §9 determinism contract);
    /// this knob only trades wall-clock for cores. Defaults to the
    /// `PM_THREADS` environment variable when set, else 1 (serial).
    pub threads: usize,
}

impl Default for MinerParams {
    fn default() -> Self {
        Self {
            r3sigma: 100.0,
            min_pts: 5,
            eps_p: 30.0,
            d_v: 15.0,
            alpha: 0.8,
            v_min: 400.0, // 20m std-dev: a single building footprint
            n_min: 5,
            merge_cos: 0.9,
            merge_dist: 30.0,
            theta_t: 20 * 60,
            theta_d: 100.0,
            sigma: 50,
            delta_t: 60 * 60,
            rho: 0.002,
            min_pattern_len: 2,
            max_pattern_len: 5,
            threads: pm_runtime::default_threads(),
        }
    }
}

impl MinerParams {
    /// Validates parameter sanity; call before a long pipeline run to fail
    /// fast on nonsensical configurations. The error names the offending
    /// field so callers can report it without parsing message text.
    pub fn validate(&self) -> Result<(), MinerError> {
        fn pos(name: &'static str, v: f64) -> Result<(), MinerError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(MinerError::params(
                    name,
                    format!("must be positive, got {v}"),
                ))
            }
        }
        pos("r3sigma", self.r3sigma)?;
        pos("eps_p", self.eps_p)?;
        pos("d_v", self.d_v)?;
        pos("v_min", self.v_min)?;
        pos("rho", self.rho)?;
        pos("theta_d", self.theta_d)?;
        pos("merge_dist", self.merge_dist)?;
        if !(0.0 < self.alpha && self.alpha <= 1.0) {
            return Err(MinerError::params(
                "alpha",
                format!("must be in (0, 1], got {}", self.alpha),
            ));
        }
        if !(0.0 < self.merge_cos && self.merge_cos <= 1.0) {
            return Err(MinerError::params(
                "merge_cos",
                format!("must be in (0, 1], got {}", self.merge_cos),
            ));
        }
        if self.min_pts == 0 {
            return Err(MinerError::params("min_pts", "must be at least 1"));
        }
        if self.n_min == 0 {
            return Err(MinerError::params("n_min", "must be at least 1"));
        }
        if self.sigma == 0 {
            return Err(MinerError::params("sigma", "must be at least 1"));
        }
        if self.theta_t <= 0 {
            return Err(MinerError::params(
                "theta_t",
                format!("must be positive, got {}", self.theta_t),
            ));
        }
        if self.delta_t <= 0 {
            return Err(MinerError::params(
                "delta_t",
                format!("must be positive, got {}", self.delta_t),
            ));
        }
        if self.min_pattern_len == 0 {
            return Err(MinerError::params("min_pattern_len", "must be at least 1"));
        }
        if self.max_pattern_len < self.min_pattern_len {
            return Err(MinerError::params(
                "max_pattern_len",
                format!(
                    "must be >= min_pattern_len ({} < {})",
                    self.max_pattern_len, self.min_pattern_len
                ),
            ));
        }
        Ok(())
    }

    /// Returns a copy with a different support threshold (Fig. 11 sweeps).
    #[must_use]
    pub fn with_sigma(mut self, sigma: usize) -> Self {
        self.sigma = sigma;
        self
    }

    /// Returns a copy with a different density threshold (Fig. 12 sweeps).
    #[must_use]
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Returns a copy with a different temporal constraint (Fig. 13 sweeps).
    #[must_use]
    pub fn with_delta_t(mut self, delta_t: i64) -> Self {
        self.delta_t = delta_t;
        self
    }

    /// Returns a copy with a different worker-thread count (`0` = all
    /// available cores). Output is bit-identical for every value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = MinerParams::default();
        assert_eq!(p.r3sigma, 100.0);
        assert_eq!(p.d_v, 15.0);
        assert_eq!(p.min_pts, 5);
        assert_eq!(p.eps_p, 30.0);
        assert_eq!(p.alpha, 0.8);
        assert_eq!(p.merge_cos, 0.9);
        assert_eq!(p.sigma, 50);
        assert_eq!(p.delta_t, 3600);
        assert_eq!(p.rho, 0.002);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn sweep_builders() {
        let p = MinerParams::default()
            .with_sigma(75)
            .with_rho(0.004)
            .with_delta_t(900)
            .with_threads(4);
        assert_eq!(p.sigma, 75);
        assert_eq!(p.rho, 0.004);
        assert_eq!(p.delta_t, 900);
        assert_eq!(p.threads, 4);
        assert!(p.validate().is_ok());
        // Every thread count is valid: 0 means available_parallelism.
        assert!(p.with_threads(0).validate().is_ok());
    }

    /// Asserts that `params` fails validation blaming exactly `field`.
    fn assert_rejects(params: MinerParams, field: &str) {
        match params.validate() {
            Err(MinerError::Params { field: f, .. }) => {
                assert_eq!(f, field, "wrong field blamed");
            }
            other => panic!("expected Params error for `{field}`, got {other:?}"),
        }
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(MinerParams {
            alpha: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MinerParams {
            r3sigma: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn every_bound_violation_names_its_field() {
        let d = MinerParams::default;
        assert_rejects(
            MinerParams {
                r3sigma: 0.0,
                ..d()
            },
            "r3sigma",
        );
        assert_rejects(
            MinerParams {
                r3sigma: f64::NAN,
                ..d()
            },
            "r3sigma",
        );
        assert_rejects(
            MinerParams {
                eps_p: -30.0,
                ..d()
            },
            "eps_p",
        );
        assert_rejects(
            MinerParams {
                d_v: f64::INFINITY,
                ..d()
            },
            "d_v",
        );
        assert_rejects(MinerParams { v_min: 0.0, ..d() }, "v_min");
        assert_rejects(MinerParams { rho: -0.002, ..d() }, "rho");
        assert_rejects(
            MinerParams {
                theta_d: f64::NAN,
                ..d()
            },
            "theta_d",
        );
        assert_rejects(
            MinerParams {
                merge_dist: 0.0,
                ..d()
            },
            "merge_dist",
        );
        assert_rejects(MinerParams { alpha: 0.0, ..d() }, "alpha");
        assert_rejects(MinerParams { alpha: 1.5, ..d() }, "alpha");
        assert_rejects(
            MinerParams {
                alpha: f64::NAN,
                ..d()
            },
            "alpha",
        );
        assert_rejects(
            MinerParams {
                merge_cos: 0.0,
                ..d()
            },
            "merge_cos",
        );
        assert_rejects(
            MinerParams {
                merge_cos: 1.1,
                ..d()
            },
            "merge_cos",
        );
        assert_rejects(MinerParams { min_pts: 0, ..d() }, "min_pts");
        assert_rejects(MinerParams { n_min: 0, ..d() }, "n_min");
        assert_rejects(MinerParams { sigma: 0, ..d() }, "sigma");
        assert_rejects(MinerParams { theta_t: 0, ..d() }, "theta_t");
        assert_rejects(
            MinerParams {
                theta_t: -60,
                ..d()
            },
            "theta_t",
        );
        assert_rejects(MinerParams { delta_t: 0, ..d() }, "delta_t");
        assert_rejects(
            MinerParams {
                min_pattern_len: 0,
                ..d()
            },
            "min_pattern_len",
        );
        assert_rejects(
            MinerParams {
                min_pattern_len: 3,
                max_pattern_len: 2,
                ..d()
            },
            "max_pattern_len",
        );
    }

    #[test]
    fn validation_error_displays_field_and_value() {
        let err = MinerParams {
            alpha: 2.0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("alpha") && msg.contains("2"), "{msg}");
        assert_eq!(err.stage(), "params");
    }
}
