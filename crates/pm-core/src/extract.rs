//! Pattern Extractor (paper §4.3): PrefixSpan coarse mining plus
//! Algorithm 4, *CounterpartCluster*.
//!
//! The extractor first mines frequent category sequences (coarse semantic
//! patterns) with PrefixSpan, then refines each coarse pattern spatially:
//! the k-th stay points of its member trajectories are clustered with OPTICS
//! (automatic threshold), and members are gathered into counterpart sets
//! that share a cluster at every position, respect the temporal constraint
//! `delta_t`, and keep every positional group denser than `rho`. Each
//! surviving counterpart set with support at least `sigma` becomes one
//! *fine-grained pattern*, represented by the member stay point closest to
//! each positional centroid.

use crate::error::{Degradation, MinerError};
use crate::params::MinerParams;
use crate::types::{Category, SemanticTrajectory, StayPoint};
use pm_cluster::{Optics, OpticsParams, OpticsScratch};
use pm_geo::{centroid, den, LocalPoint};
use pm_seqmine::{prefixspan, PrefixSpanParams};

/// The "default maximum distance threshold" OPTICS starts from (Algorithm 4
/// line 6). Only bounds work: groups wider than a kilometer could never pass
/// the density gate at any published `rho`.
const OPTICS_MAX_EPS: f64 = 1_000.0;

/// A fine-grained semantic pattern (Definition 11) as produced by
/// Algorithm 4.
#[derive(Debug, Clone)]
pub struct FinePattern {
    /// The semantic category at each position (the list `O`).
    pub categories: Vec<Category>,
    /// Representative stay points: per position, the member stay point
    /// closest to the positional centroid, with the group's average time.
    pub stays: Vec<StayPoint>,
    /// Indices (into the input database) of the member trajectories — the
    /// counterpart set `C_CP^m`. Its size is the pattern's support.
    pub members: Vec<usize>,
    /// Per-position stay-point groups (Definition 10), used by the
    /// evaluation metrics (Eq. 9–12).
    pub groups: Vec<Vec<StayPoint>>,
}

impl FinePattern {
    /// The pattern's support: the number of member trajectories.
    pub fn support(&self) -> usize {
        self.members.len()
    }

    /// Pattern length in stay points.
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// Whether the pattern has no positions (never produced by the miner).
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// Compact human-readable form, e.g. `Residence -> Business & Office`.
    pub fn describe(&self) -> String {
        self.categories
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// One member trajectory of a coarse pattern: which database trajectory and
/// which stay-point index realizes each pattern position.
#[derive(Debug, Clone)]
struct Member {
    traj: usize,
    stay_at: Vec<usize>,
}

/// Mines all fine-grained patterns of `db` — PrefixSpan followed by
/// Algorithm 4 per coarse pattern. Output is deterministic: sorted by
/// descending support, then by category sequence.
///
/// Convenience wrapper over [`extract_patterns_tracked`] that discards
/// degradation events.
pub fn extract_patterns(
    db: &[SemanticTrajectory],
    params: &MinerParams,
) -> Result<Vec<FinePattern>, MinerError> {
    let mut events = Vec::new();
    extract_patterns_tracked(db, params, &mut events)
}

/// Like [`extract_patterns`], additionally recording recoverable trouble:
/// tagged stay points with non-finite positions are excluded from the
/// sequences (they cannot be clustered or represent a pattern position) and
/// reported as [`Degradation::SkippedExtractionStays`].
pub fn extract_patterns_tracked(
    db: &[SemanticTrajectory],
    params: &MinerParams,
    events: &mut Vec<Degradation>,
) -> Result<Vec<FinePattern>, MinerError> {
    extract_patterns_observed(db, params, events, &pm_obs::Obs::noop())
}

/// [`extract_patterns_tracked`] under observation: sequence building,
/// PrefixSpan, and the counterpart refinement are timed as `extract.*` spans
/// (the per-pattern OPTICS runs additionally record `cluster.optics` spans
/// on their worker threads), and coarse/fine pattern counts are recorded.
/// The mined patterns are byte-identical to an unobserved run.
pub fn extract_patterns_observed(
    db: &[SemanticTrajectory],
    params: &MinerParams,
    events: &mut Vec<Degradation>,
    obs: &pm_obs::Obs,
) -> Result<Vec<FinePattern>, MinerError> {
    params.validate()?;

    // Category sequences plus the mapping back from sequence positions to
    // stay indices (untagged and non-finite stay points are skipped).
    let span = obs.span("extract.sequences");
    let mut n_skipped = 0usize;
    let mut sequences: Vec<Vec<u32>> = Vec::with_capacity(db.len());
    let mut stay_of_item: Vec<Vec<usize>> = Vec::with_capacity(db.len());
    for st in db {
        let mut seq = Vec::new();
        let mut map = Vec::new();
        for (i, sp) in st.stays.iter().enumerate() {
            if let Some(cat) = sp.primary_category() {
                if !(sp.pos.x.is_finite() && sp.pos.y.is_finite()) {
                    n_skipped += 1;
                    continue;
                }
                seq.push(cat as u32);
                map.push(i);
            }
        }
        sequences.push(seq);
        stay_of_item.push(map);
    }
    if n_skipped > 0 {
        events.push(Degradation::SkippedExtractionStays { count: n_skipped });
    }
    span.finish();
    obs.incr(
        "extract.sequence_items",
        sequences.iter().map(|s| s.len() as u64).sum(),
    );

    let span = obs.span("extract.prefixspan");
    let coarse = prefixspan(
        &sequences,
        PrefixSpanParams::new(params.sigma, params.min_pattern_len, params.max_pattern_len),
    );
    span.finish();
    obs.incr("extract.coarse_patterns", coarse.len() as u64);

    // Algorithm 4 refines every coarse pattern independently (its OPTICS
    // runs and counterpart filtering read only that pattern's members), so
    // the per-pattern work fans out over `params.threads` workers — with
    // work stealing, because pattern sizes are heavily skewed (one popular
    // commute pattern can carry most of the occurrences) and a chunked
    // split would serialize on whichever worker drew the giant. Each
    // invocation fills its own pattern-local list; flattening in coarse
    // order reproduces the serial loop's emission order byte for byte.
    let span = obs.span("extract.counterpart");
    let per_pattern: Vec<Vec<FinePattern>> =
        pm_runtime::par_map_stealing(&coarse, params.threads, |pattern| {
            let categories: Vec<Category> = pattern
                .items
                .iter()
                .map(|&i| Category::from_index(i as usize))
                .collect();
            let members: Vec<Member> = pattern
                .occurrences
                .iter()
                .map(|occ| Member {
                    traj: occ.seq,
                    stay_at: occ
                        .positions
                        .iter()
                        .map(|&p| stay_of_item[occ.seq][p])
                        .collect(),
                })
                .collect();
            let mut local = Vec::new();
            counterpart_cluster(db, &categories, members, params, obs, &mut local);
            local
        });
    span.finish();
    let mut out: Vec<FinePattern> = per_pattern.into_iter().flatten().collect();
    obs.incr("extract.fine_patterns", out.len() as u64);

    out.sort_by(|a, b| {
        b.support()
            .cmp(&a.support())
            .then_with(|| a.categories.cmp(&b.categories))
            .then_with(|| {
                a.stays[0]
                    .pos
                    .x
                    .total_cmp(&b.stays[0].pos.x)
                    .then(a.stays[0].pos.y.total_cmp(&b.stays[0].pos.y))
            })
    });
    Ok(out)
}

/// Algorithm 4 applied to one coarse pattern.
fn counterpart_cluster(
    db: &[SemanticTrajectory],
    categories: &[Category],
    members: Vec<Member>,
    params: &MinerParams,
    obs: &pm_obs::Obs,
    out: &mut Vec<FinePattern>,
) {
    let m = categories.len();
    if members.len() < params.sigma || m == 0 {
        return;
    }
    let stay = |mem: &Member, k: usize| -> &StayPoint { &db[mem.traj].stays[mem.stay_at[k]] };

    // Line 5–6: OPTICS clustering of the k-th points, one run per position.
    // One scratch (coordinate columns, sweep buffers) and one input buffer
    // serve all m positions — the per-position allocations would otherwise
    // dominate small coarse patterns.
    let optics_params = OpticsParams::new(OPTICS_MAX_EPS, params.sigma);
    let mut scratch = OpticsScratch::default();
    let mut pts: Vec<LocalPoint> = Vec::with_capacity(members.len());
    let labels: Vec<Vec<Option<usize>>> = (0..m)
        .map(|k| {
            pts.clear();
            pts.extend(members.iter().map(|mem| stay(mem, k).pos));
            Optics::run_obs_with_scratch(&pts, optics_params, obs, &mut scratch)
                .extract_auto()
                .labels
        })
        .collect();

    // Lines 7–20, with `pa` as a removal mask. The pseudo code iterates
    // "for each ST_i in pa" while deleting from pa; we take the first
    // remaining member as the next reference, which visits exactly the
    // trajectories still in pa. `cand` and the density-gate point buffer
    // are reused across references.
    let mut in_pa = vec![true; members.len()];
    let mut cand: Vec<usize> = Vec::with_capacity(members.len());
    while let Some(i) = in_pa.iter().position(|&alive| alive) {
        cand.clear();
        cand.extend((0..members.len()).filter(|&j| in_pa[j]));
        let mut valid = true;
        #[allow(clippy::needless_range_loop)] // k indexes stays and labels in lockstep
        for k in 0..m {
            // Line 10: keep members sharing ST_i's cluster at position k.
            // Noise points (no cluster) only match themselves.
            cand.retain(|&j| j == i || (labels[k][j].is_some() && labels[k][j] == labels[k][i]));
            // Lines 11–12: temporal constraint between consecutive stays.
            if k > 0 {
                cand.retain(|&j| {
                    let gap = stay(&members[j], k).time - stay(&members[j], k - 1).time;
                    gap.abs() < params.delta_t
                });
            }
            // Lines 13–14: density gate on the positional group.
            pts.clear();
            pts.extend(cand.iter().map(|&j| stay(&members[j], k).pos));
            if den(&pts) < params.rho {
                for &j in &cand {
                    in_pa[j] = false;
                }
                valid = false;
                break;
            }
        }
        // Line 15: remove the counterpart set from pa. The reference leaves
        // pa regardless so the loop always progresses.
        for &j in &cand {
            in_pa[j] = false;
        }
        in_pa[i] = false;

        // Lines 16–20: emit when the counterpart set clears the support bar.
        if !valid || cand.len() < params.sigma {
            continue;
        }
        let groups: Vec<Vec<StayPoint>> = (0..m)
            .map(|k| cand.iter().map(|&j| *stay(&members[j], k)).collect())
            .collect();
        // `representative` is None only for an empty group, which cannot
        // happen here (`cand` is non-empty); skipping is the defined
        // fallback rather than a panic.
        let Some(stays) = groups
            .iter()
            .map(|group| representative(group))
            .collect::<Option<Vec<StayPoint>>>()
        else {
            continue;
        };
        out.push(FinePattern {
            categories: categories.to_vec(),
            stays,
            members: cand.iter().map(|&j| members[j].traj).collect(),
            groups,
        });
    }
}

/// Line 19: the member stay point closest to the group centroid, stamped
/// with the group's average time (128-bit accumulation, so corrupted
/// timestamps cannot overflow). `None` for an empty group.
fn representative(group: &[StayPoint]) -> Option<StayPoint> {
    let pts: Vec<LocalPoint> = group.iter().map(|sp| sp.pos).collect();
    let center = centroid(&pts)?;
    let closest = group.iter().min_by(|a, b| {
        a.pos
            .distance_sq(&center)
            .total_cmp(&b.pos.distance_sq(&center))
    })?;
    let avg_time =
        (group.iter().map(|sp| sp.time as i128).sum::<i128>() / group.len() as i128) as i64;
    Some(StayPoint::new(closest.pos, avg_time, closest.tags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Tags;

    fn sp(x: f64, y: f64, t: i64, c: Category) -> StayPoint {
        StayPoint::new(LocalPoint::new(x, y), t, Tags::only(c))
    }

    fn small_params() -> MinerParams {
        MinerParams {
            sigma: 5,
            rho: 0.0005,
            ..MinerParams::default()
        }
    }

    /// 20 commuters: Residence (0,0) -> Business (2000,0), tight 30m jitter.
    fn commute_db(n: usize, jitter_step: f64) -> Vec<SemanticTrajectory> {
        (0..n)
            .map(|i| {
                let dx = (i % 5) as f64 * jitter_step;
                let dy = (i / 5 % 5) as f64 * jitter_step;
                let t0 = (i as i64 % 3) * 600;
                SemanticTrajectory::new(vec![
                    sp(dx, dy, t0 + 7 * 3600, Category::Residence),
                    sp(2_000.0 + dx, dy, t0 + 8 * 3600 - 900, Category::Business),
                ])
            })
            .collect()
    }

    #[test]
    fn mines_the_commute_pattern() {
        let db = commute_db(20, 8.0);
        let patterns = extract_patterns(&db, &small_params()).expect("extract");
        assert!(!patterns.is_empty());
        let best = &patterns[0];
        assert_eq!(
            best.categories,
            vec![Category::Residence, Category::Business]
        );
        assert_eq!(best.support(), 20);
        assert_eq!(best.describe(), "Residence -> Business & Office");
        // Representatives near the anchor centroids.
        assert!(best.stays[0].pos.distance(&LocalPoint::new(16.0, 16.0)) < 40.0);
        assert!(best.stays[1].pos.x > 1_900.0);
    }

    #[test]
    fn support_below_sigma_yields_nothing() {
        let db = commute_db(4, 8.0); // sigma = 5
        let patterns = extract_patterns(&db, &small_params()).expect("extract");
        assert!(patterns.is_empty());
    }

    #[test]
    fn spatially_split_origins_give_two_patterns() {
        // Two residential anchors 5km apart feeding the same office.
        let mut db = commute_db(10, 8.0);
        db.extend((0..10).map(|i| {
            let dx = (i % 5) as f64 * 8.0;
            SemanticTrajectory::new(vec![
                sp(5_000.0 + dx, 0.0, 7 * 3600, Category::Residence),
                sp(2_000.0 + dx, 0.0, 8 * 3600 - 900, Category::Business),
            ])
        }));
        let patterns = extract_patterns(&db, &small_params()).expect("extract");
        let commute: Vec<_> = patterns
            .iter()
            .filter(|p| p.categories == vec![Category::Residence, Category::Business])
            .collect();
        assert_eq!(
            commute.len(),
            2,
            "expected a pattern per residential anchor"
        );
        let mut supports: Vec<usize> = commute.iter().map(|p| p.support()).collect();
        supports.sort_unstable();
        assert_eq!(supports, vec![10, 10]);
    }

    #[test]
    fn temporal_constraint_filters_slow_members() {
        let mut db = commute_db(10, 8.0);
        // 10 more members whose second stay is 3h later (beyond delta_t=1h).
        db.extend((0..10).map(|i| {
            let dx = (i % 5) as f64 * 8.0;
            SemanticTrajectory::new(vec![
                sp(dx, 0.0, 7 * 3600, Category::Residence),
                sp(2_000.0 + dx, 0.0, 10 * 3600, Category::Business),
            ])
        }));
        let patterns = extract_patterns(&db, &small_params()).expect("extract");
        let best = patterns
            .iter()
            .find(|p| p.categories == vec![Category::Residence, Category::Business])
            .expect("commute pattern");
        assert_eq!(best.support(), 10, "slow members must be excluded");
    }

    #[test]
    fn density_gate_rejects_sparse_groups() {
        // Destinations scattered over tens of kilometers: the positional
        // group can never reach rho.
        let db: Vec<SemanticTrajectory> = (0..20)
            .map(|i| {
                SemanticTrajectory::new(vec![
                    sp((i % 5) as f64 * 8.0, 0.0, 7 * 3600, Category::Residence),
                    sp(
                        2_000.0 + i as f64 * 3_000.0,
                        0.0,
                        8 * 3600 - 900,
                        Category::Business,
                    ),
                ])
            })
            .collect();
        let params = MinerParams {
            sigma: 5,
            rho: 0.002,
            ..MinerParams::default()
        };
        let patterns = extract_patterns(&db, &params).expect("extract");
        assert!(
            patterns
                .iter()
                .all(|p| p.categories != vec![Category::Residence, Category::Business]),
            "sparse destination group must not form a fine pattern"
        );
    }

    #[test]
    fn three_leg_pattern() {
        let db: Vec<SemanticTrajectory> = (0..12)
            .map(|i| {
                let dx = (i % 4) as f64 * 10.0;
                SemanticTrajectory::new(vec![
                    sp(dx, 0.0, 7 * 3600, Category::Residence),
                    sp(2_000.0 + dx, 0.0, 8 * 3600 - 900, Category::Business),
                    sp(4_000.0 + dx, 0.0, 9 * 3600 - 1800, Category::Restaurant),
                ])
            })
            .collect();
        let patterns = extract_patterns(&db, &small_params()).expect("extract");
        let tri = patterns
            .iter()
            .find(|p| p.len() == 3)
            .expect("3-leg pattern");
        assert_eq!(
            tri.categories,
            vec![
                Category::Residence,
                Category::Business,
                Category::Restaurant
            ]
        );
        assert_eq!(tri.support(), 12);
        assert_eq!(tri.groups.len(), 3);
        assert!(tri.groups.iter().all(|g| g.len() == 12));
    }

    #[test]
    fn untagged_stays_are_ignored() {
        let db: Vec<SemanticTrajectory> = (0..8)
            .map(|i| {
                let dx = (i % 4) as f64 * 10.0;
                SemanticTrajectory::new(vec![
                    sp(dx, 0.0, 7 * 3600, Category::Residence),
                    StayPoint::untagged(LocalPoint::new(1_000.0, 0.0), 7 * 3600 + 1800),
                    sp(2_000.0 + dx, 0.0, 8 * 3600 - 900, Category::Business),
                ])
            })
            .collect();
        let patterns = extract_patterns(&db, &small_params()).expect("extract");
        let best = patterns
            .iter()
            .find(|p| p.categories == vec![Category::Residence, Category::Business])
            .expect("pattern mined across the untagged gap");
        assert_eq!(best.support(), 8);
    }

    #[test]
    fn empty_database() {
        assert!(extract_patterns(&[], &small_params())
            .expect("extract")
            .is_empty());
    }

    #[test]
    fn invalid_params_are_rejected() {
        let db = commute_db(5, 8.0);
        let bad = MinerParams {
            rho: f64::NAN,
            ..MinerParams::default()
        };
        assert!(extract_patterns(&db, &bad).is_err());
    }

    #[test]
    fn non_finite_stays_are_skipped_with_degradation() {
        // Corrupt one member's first stay: it drops out of the sequences,
        // the rest of the cohort still forms the pattern.
        let mut db = commute_db(21, 8.0);
        db[0].stays[0].pos = LocalPoint::new(f64::NAN, 0.0);
        let mut events = Vec::new();
        let patterns =
            extract_patterns_tracked(&db, &small_params(), &mut events).expect("extract");
        assert_eq!(
            events,
            vec![Degradation::SkippedExtractionStays { count: 1 }]
        );
        let best = patterns
            .iter()
            .find(|p| p.categories == vec![Category::Residence, Category::Business])
            .expect("commute pattern");
        assert_eq!(best.support(), 20);
        for p in &patterns {
            for sp in &p.stays {
                assert!(sp.pos.x.is_finite() && sp.pos.y.is_finite());
            }
        }
    }

    #[test]
    fn extreme_timestamps_do_not_overflow_representative() {
        // Stay times near i64::MAX: the group average is computed in
        // 128-bit, so summing 20 of them cannot overflow.
        let base = i64::MAX - 10;
        let db: Vec<SemanticTrajectory> = (0..20)
            .map(|i| {
                let dx = (i % 5) as f64 * 8.0;
                SemanticTrajectory::new(vec![
                    sp(dx, 0.0, base - 900, Category::Residence),
                    sp(2_000.0 + dx, 0.0, base, Category::Business),
                ])
            })
            .collect();
        let patterns = extract_patterns(&db, &small_params()).expect("extract");
        let best = patterns
            .iter()
            .find(|p| p.categories == vec![Category::Residence, Category::Business])
            .expect("commute pattern");
        assert!(best.stays[1].time > 0, "average must not wrap negative");
    }

    #[test]
    fn deterministic_output() {
        let db = commute_db(20, 8.0);
        let a = extract_patterns(&db, &small_params()).expect("extract");
        let b = extract_patterns(&db, &small_params()).expect("extract");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.categories, y.categories);
            assert_eq!(x.members, y.members);
        }
    }

    #[test]
    fn representative_is_a_member_point() {
        let db = commute_db(20, 8.0);
        let patterns = extract_patterns(&db, &small_params()).expect("extract");
        let best = &patterns[0];
        for (k, rep) in best.stays.iter().enumerate() {
            assert!(
                best.groups[k].iter().any(|sp| sp.pos == rep.pos),
                "representative must be one of the group members"
            );
        }
    }
}
