//! The paper's four evaluation metrics (§5, Eq. 9–12): number of patterns,
//! coverage, spatial sparsity and semantic consistency.

use crate::extract::FinePattern;
use pm_geo::{mean_pairwise_distance, LocalPoint};

/// Per-pattern quality metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMetrics {
    /// Eq. 9–10: average over positions of the mean pairwise distance inside
    /// each positional group, in meters. Smaller is denser/better.
    pub spatial_sparsity: f64,
    /// Eq. 11–12: average over positions of the mean pairwise tag-set cosine
    /// similarity inside each group, in `[0, 1]`. Larger is better.
    pub semantic_consistency: f64,
    /// The pattern's support (member count).
    pub support: usize,
    /// Pattern length in stay points.
    pub length: usize,
}

/// Computes Eq. 9–12 for one pattern from its positional groups.
pub fn pattern_metrics(pattern: &FinePattern) -> PatternMetrics {
    let n = pattern.groups.len().max(1);
    let mut ss_total = 0.0;
    let mut sc_total = 0.0;
    for group in &pattern.groups {
        let pts: Vec<LocalPoint> = group.iter().map(|sp| sp.pos).collect();
        ss_total += mean_pairwise_distance(&pts);
        sc_total += group_consistency(group);
    }
    PatternMetrics {
        spatial_sparsity: ss_total / n as f64,
        semantic_consistency: sc_total / n as f64,
        support: pattern.support(),
        length: pattern.len(),
    }
}

/// Eq. 11 for one group: mean pairwise cosine similarity of the member tag
/// sets. Groups with fewer than two members are perfectly consistent.
fn group_consistency(group: &[crate::types::StayPoint]) -> f64 {
    let m = group.len();
    if m < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    for i in 0..m - 1 {
        for j in i + 1..m {
            total += group[i].tags.cosine(group[j].tags);
        }
    }
    total * 2.0 / (m * (m - 1)) as f64
}

/// Aggregate statistics over a pattern set — the numbers reported in the
/// legends of Fig. 9 and the y-axes of Figs. 11–13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternSetSummary {
    /// `#patterns`.
    pub n_patterns: usize,
    /// `coverage`: the sum of supports.
    pub coverage: usize,
    /// Mean spatial sparsity across patterns, in meters (0 when empty).
    pub avg_sparsity: f64,
    /// Mean semantic consistency across patterns (1 when empty).
    pub avg_consistency: f64,
}

/// Summarizes a pattern set.
pub fn summarize(patterns: &[FinePattern]) -> PatternSetSummary {
    if patterns.is_empty() {
        return PatternSetSummary {
            n_patterns: 0,
            coverage: 0,
            avg_sparsity: 0.0,
            avg_consistency: 1.0,
        };
    }
    let metrics: Vec<PatternMetrics> = patterns.iter().map(pattern_metrics).collect();
    let n = metrics.len() as f64;
    PatternSetSummary {
        n_patterns: patterns.len(),
        coverage: metrics.iter().map(|m| m.support).sum(),
        avg_sparsity: metrics.iter().map(|m| m.spatial_sparsity).sum::<f64>() / n,
        avg_consistency: metrics.iter().map(|m| m.semantic_consistency).sum::<f64>() / n,
    }
}

/// Distribution summary (min, quartiles, max, mean) — the box-plot numbers
/// of Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub q2: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes a five-number summary plus mean, or `None` for empty input.
pub fn five_number(values: &[f64]) -> Option<FiveNumber> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let q = |frac: f64| -> f64 {
        let pos = frac * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (v[hi] - v[lo]) * (pos - lo as f64)
        }
    };
    Some(FiveNumber {
        min: v[0],
        q1: q(0.25),
        q2: q(0.5),
        q3: q(0.75),
        max: v[v.len() - 1],
        mean: v.iter().sum::<f64>() / v.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Category, StayPoint, Tags};
    use pm_geo::LocalPoint;

    fn sp(x: f64, y: f64, c: Category) -> StayPoint {
        StayPoint::new(LocalPoint::new(x, y), 0, Tags::only(c))
    }

    fn pattern(groups: Vec<Vec<StayPoint>>) -> FinePattern {
        let categories = groups
            .iter()
            .map(|g| g[0].tags.iter().next().unwrap())
            .collect();
        let stays = groups.iter().map(|g| g[0]).collect();
        let members = (0..groups[0].len()).collect();
        FinePattern {
            categories,
            stays,
            members,
            groups,
        }
    }

    #[test]
    fn tight_same_tag_groups_are_dense_and_consistent() {
        let g0: Vec<StayPoint> = (0..5).map(|i| sp(i as f64, 0.0, Category::Shop)).collect();
        let g1: Vec<StayPoint> = (0..5)
            .map(|i| sp(1_000.0 + i as f64, 0.0, Category::Residence))
            .collect();
        let m = pattern_metrics(&pattern(vec![g0, g1]));
        assert!(m.spatial_sparsity < 3.0);
        assert!((m.semantic_consistency - 1.0).abs() < 1e-12);
        assert_eq!(m.support, 5);
        assert_eq!(m.length, 2);
    }

    #[test]
    fn mixed_tags_reduce_consistency() {
        let g: Vec<StayPoint> = vec![
            sp(0.0, 0.0, Category::Shop),
            sp(1.0, 0.0, Category::Shop),
            sp(2.0, 0.0, Category::Medical),
        ];
        let m = pattern_metrics(&pattern(vec![g]));
        // Pairs: (shop,shop)=1, (shop,med)=0, (shop,med)=0 -> 1/3.
        assert!((m.semantic_consistency - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sparsity_grows_with_spread() {
        let tight: Vec<StayPoint> = (0..4)
            .map(|i| sp(i as f64 * 5.0, 0.0, Category::Shop))
            .collect();
        let wide: Vec<StayPoint> = (0..4)
            .map(|i| sp(i as f64 * 50.0, 0.0, Category::Shop))
            .collect();
        let mt = pattern_metrics(&pattern(vec![tight]));
        let mw = pattern_metrics(&pattern(vec![wide]));
        assert!(mw.spatial_sparsity > mt.spatial_sparsity * 5.0);
    }

    #[test]
    fn summarize_aggregates() {
        let p1 = pattern(vec![(0..5)
            .map(|i| sp(i as f64, 0.0, Category::Shop))
            .collect()]);
        let p2 = pattern(vec![(0..7)
            .map(|i| sp(i as f64, 0.0, Category::Residence))
            .collect()]);
        let s = summarize(&[p1, p2]);
        assert_eq!(s.n_patterns, 2);
        assert_eq!(s.coverage, 12);
        assert!(s.avg_sparsity > 0.0);
        assert!((s.avg_consistency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_single_pattern_mirrors_its_metrics() {
        // With one pattern the summary IS that pattern's metrics.
        let p = pattern(vec![
            (0..4)
                .map(|i| sp(i as f64 * 10.0, 0.0, Category::Shop))
                .collect(),
            (0..4)
                .map(|i| sp(500.0 + i as f64 * 10.0, 0.0, Category::Residence))
                .collect(),
        ]);
        let m = pattern_metrics(&p);
        let s = summarize(std::slice::from_ref(&p));
        assert_eq!(s.n_patterns, 1);
        assert_eq!(s.coverage, m.support);
        assert_eq!(s.avg_sparsity, m.spatial_sparsity);
        assert_eq!(s.avg_consistency, m.semantic_consistency);
    }

    #[test]
    fn summarize_averages_mixed_consistencies() {
        // One perfectly consistent pattern plus one at 1/3 average to 2/3,
        // and sparsities average independently of consistencies.
        let pure = pattern(vec![vec![
            sp(0.0, 0.0, Category::Shop),
            sp(6.0, 0.0, Category::Shop),
        ]]);
        let mixed = pattern(vec![vec![
            sp(0.0, 0.0, Category::Shop),
            sp(2.0, 0.0, Category::Shop),
            sp(4.0, 0.0, Category::Medical),
        ]]);
        let s = summarize(&[pure, mixed]);
        assert_eq!(s.n_patterns, 2);
        assert_eq!(s.coverage, 5);
        assert!((s.avg_consistency - 2.0 / 3.0).abs() < 1e-9);
        // pure group: single pair 6 m apart -> 6; mixed: pairs 2, 4, 2 -> 8/3.
        assert!((s.avg_sparsity - (6.0 + 8.0 / 3.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sub_two_member_groups_are_consistent_in_summary() {
        // The `< 2` members edge of Eq. 11: empty and singleton groups
        // define consistency as 1.0, and that convention must survive
        // aggregation rather than poisoning the average with NaN.
        let p = pattern(vec![vec![sp(0.0, 0.0, Category::Shop)]]);
        let s = summarize(&[p]);
        assert_eq!(s.avg_consistency, 1.0);
        assert_eq!(s.avg_sparsity, 0.0);
        assert!(s.avg_consistency.is_finite() && s.avg_sparsity.is_finite());
        assert_eq!(group_consistency(&[]), 1.0);
        assert_eq!(group_consistency(&[sp(1.0, 2.0, Category::Medical)]), 1.0);
    }

    #[test]
    fn summarize_empty() {
        let s = summarize(&[]);
        assert_eq!(s.n_patterns, 0);
        assert_eq!(s.coverage, 0);
        assert_eq!(s.avg_sparsity, 0.0);
        assert_eq!(s.avg_consistency, 1.0);
    }

    #[test]
    fn five_number_summary() {
        let f = five_number(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.q2, 3.0);
        assert_eq!(f.q3, 4.0);
        assert_eq!(f.max, 5.0);
        assert_eq!(f.mean, 3.0);
        assert!(five_number(&[]).is_none());
        let single = five_number(&[7.0]).unwrap();
        assert_eq!(single.min, 7.0);
        assert_eq!(single.max, 7.0);
        assert_eq!(single.q2, 7.0);
    }

    #[test]
    fn singleton_group_is_perfectly_consistent_and_dense() {
        let m = pattern_metrics(&pattern(vec![vec![sp(0.0, 0.0, Category::Shop)]]));
        assert_eq!(m.spatial_sparsity, 0.0);
        assert_eq!(m.semantic_consistency, 1.0);
    }
}
