//! Containment, reachable containment, the counterpart function and groups
//! (paper Definitions 7–10).
//!
//! These definitions formalize when one semantic trajectory's pattern is
//! captured by another: matched stay points must be spatially close
//! (within `eps_t`), temporally regular (adjacent gaps within `delta_t` on
//! both sides) and semantically compatible (tag-set superset). Algorithm 4
//! realizes the same relations through clustering for scalability; the
//! direct implementations here power the metrics and the test oracles.

use crate::types::{SemanticTrajectory, StayPoint, Timestamp};

/// Checks Definition 7: does `st` contain `st2`?
///
/// On success returns the indices into `st` of a witnessing sub-trajectory
/// `ST''` (one index per stay point of `st2`). The search backtracks over
/// candidate matches, so a valid witness is found whenever one exists (the
/// greedy leftmost choice alone can miss witnesses whose time gaps qualify).
pub fn containment_witness(
    st: &SemanticTrajectory,
    st2: &SemanticTrajectory,
    eps_t: f64,
    delta_t: Timestamp,
) -> Option<Vec<usize>> {
    if st2.len() > st.len() || st2.is_empty() {
        return None;
    }
    // Condition (ii) constrains st2's own adjacent gaps too.
    for w in st2.stays.windows(2) {
        if (w[1].time - w[0].time).abs() > delta_t {
            return None;
        }
    }
    let mut chosen = Vec::with_capacity(st2.len());
    if search(&st.stays, &st2.stays, 0, 0, eps_t, delta_t, &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

fn matches(a: &StayPoint, b: &StayPoint, eps_t: f64) -> bool {
    a.pos.distance(&b.pos) <= eps_t && a.tags.is_superset(b.tags)
}

fn search(
    big: &[StayPoint],
    small: &[StayPoint],
    from: usize,
    k: usize,
    eps_t: f64,
    delta_t: Timestamp,
    chosen: &mut Vec<usize>,
) -> bool {
    if k == small.len() {
        return true;
    }
    for i in from..big.len() {
        if !matches(&big[i], &small[k], eps_t) {
            continue;
        }
        if let Some(&prev) = chosen.last() {
            if (big[i].time - big[prev].time).abs() > delta_t {
                continue;
            }
        }
        chosen.push(i);
        if search(big, small, i + 1, k + 1, eps_t, delta_t, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

/// Convenience wrapper: Definition 7 as a boolean.
pub fn contains(
    st: &SemanticTrajectory,
    st2: &SemanticTrajectory,
    eps_t: f64,
    delta_t: Timestamp,
) -> bool {
    containment_witness(st, st2, eps_t, delta_t).is_some()
}

/// Definition 9: the counterpart of `st2` inside `st`, chasing reachable
/// containment (Definition 8) through the intermediate trajectories of `db`.
///
/// Returns the stay points of `st` standing in for each stay point of `st2`,
/// or `None` when `st` neither contains nor reachable-contains `st2`. The
/// chain search is breadth-first over `db`, so the shortest containment
/// chain wins; `db` is typically the members of one coarse pattern (small).
pub fn counterpart(
    st: &SemanticTrajectory,
    st2: &SemanticTrajectory,
    db: &[SemanticTrajectory],
    eps_t: f64,
    delta_t: Timestamp,
) -> Option<Vec<StayPoint>> {
    // Case (i): direct containment.
    if let Some(witness) = containment_witness(st, st2, eps_t, delta_t) {
        return Some(witness.into_iter().map(|i| st.stays[i]).collect());
    }
    // Case (ii): reachable containment — find some ST_j in db with
    // st ⊒ ST_j (transitively) and ST_j ⊇ st2, then recurse on the
    // counterpart image per the recursive definition CP(ST, CP(ST_j, ST')).
    // Breadth-first over chain length. Distinct chains can reach identical
    // images, so images are deduplicated, and total work is bounded — the
    // definition only asks whether *some* chain exists.
    const MAX_IMAGES: usize = 4_096;
    let mut seen: std::collections::HashSet<Vec<(u64, u64, Timestamp)>> =
        std::collections::HashSet::new();
    let image_key = |stays: &[StayPoint]| -> Vec<(u64, u64, Timestamp)> {
        stays
            .iter()
            .map(|sp| (sp.pos.x.to_bits(), sp.pos.y.to_bits(), sp.time))
            .collect()
    };
    seen.insert(image_key(&st2.stays));
    let mut frontier: Vec<Vec<StayPoint>> = vec![st2.stays.clone()];
    while !frontier.is_empty() && seen.len() < MAX_IMAGES {
        let mut next = Vec::new();
        for target in &frontier {
            let target_st = SemanticTrajectory::new(target.clone());
            for mid in db {
                if mid.stays == st.stays || mid.stays == *target {
                    continue;
                }
                if let Some(w) = containment_witness(mid, &target_st, eps_t, delta_t) {
                    let image: Vec<StayPoint> = w.into_iter().map(|i| mid.stays[i]).collect();
                    if !seen.insert(image_key(&image)) {
                        continue; // reached before through another chain
                    }
                    let image_st = SemanticTrajectory::new(image.clone());
                    if let Some(wit) = containment_witness(st, &image_st, eps_t, delta_t) {
                        return Some(wit.into_iter().map(|i| st.stays[i]).collect());
                    }
                    next.push(image);
                }
            }
        }
        frontier = next;
    }
    None
}

/// Definition 10: for a reference trajectory `st_ref` and database `db`,
/// the group of each stay point — the j-th stay points of every counterpart
/// across the database, plus the reference's own j-th stay point.
pub fn groups(
    st_ref: &SemanticTrajectory,
    db: &[SemanticTrajectory],
    eps_t: f64,
    delta_t: Timestamp,
) -> Vec<Vec<StayPoint>> {
    let mut out: Vec<Vec<StayPoint>> = st_ref.stays.iter().map(|sp| vec![*sp]).collect();
    for st in db {
        if st.stays == st_ref.stays {
            continue;
        }
        if let Some(cp) = counterpart(st, st_ref, db, eps_t, delta_t) {
            for (j, sp) in cp.into_iter().enumerate() {
                out[j].push(sp);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Category, Tags};
    use pm_geo::LocalPoint;

    fn sp(x: f64, t: Timestamp, c: Category) -> StayPoint {
        StayPoint::new(LocalPoint::new(x, 0.0), t, Tags::only(c))
    }

    fn st(stays: Vec<StayPoint>) -> SemanticTrajectory {
        SemanticTrajectory::new(stays)
    }

    const EPS: f64 = 100.0;
    const DT: Timestamp = 3600;

    #[test]
    fn identical_trajectories_contain_each_other() {
        let a = st(vec![
            sp(0.0, 0, Category::Residence),
            sp(1_000.0, 1800, Category::Business),
        ]);
        assert!(contains(&a, &a.clone(), EPS, DT));
    }

    #[test]
    fn fig1_style_chain() {
        // Office -> Home -> Restaurant at slightly shifted positions/times.
        let mk = |shift: f64, t0: Timestamp| {
            st(vec![
                sp(0.0 + shift, t0, Category::Business),
                sp(2_000.0 + shift, t0 + 1_200, Category::Residence),
                sp(4_000.0 + shift, t0 + 2_400, Category::Restaurant),
            ])
        };
        let st1 = mk(0.0, 0);
        let st2 = mk(40.0, 300);
        let st3 = mk(80.0, 600);
        // st1 contains st2 (within 100m), st2 contains st3, and st1 reaches
        // st3 directly here too (80m < 100m).
        assert!(contains(&st1, &st2, EPS, DT));
        assert!(contains(&st2, &st3, EPS, DT));
        let witness = containment_witness(&st1, &st2, EPS, DT).unwrap();
        assert_eq!(witness, vec![0, 1, 2]);
    }

    #[test]
    fn reachable_containment_bridges_the_gap() {
        // st1 and st3 are 160m apart (beyond eps) but st2 sits between.
        let mk = |shift: f64| {
            st(vec![
                sp(0.0 + shift, 0, Category::Business),
                sp(2_000.0 + shift, 1_200, Category::Residence),
            ])
        };
        let st1 = mk(0.0);
        let st2 = mk(80.0);
        let st3 = mk(160.0);
        assert!(!contains(&st1, &st3, EPS, DT));
        let db = vec![st1.clone(), st2.clone(), st3.clone()];
        let cp = counterpart(&st1, &st3, &db, EPS, DT).expect("reachable through st2");
        assert_eq!(cp.len(), 2);
        assert_eq!(cp[0], st1.stays[0]);
    }

    #[test]
    fn semantic_mismatch_blocks_containment() {
        let a = st(vec![sp(0.0, 0, Category::Business)]);
        let b = st(vec![sp(0.0, 0, Category::Medical)]);
        assert!(!contains(&a, &b, EPS, DT));
    }

    #[test]
    fn superset_tags_satisfy_containment() {
        let rich = st(vec![StayPoint::new(
            LocalPoint::ORIGIN,
            0,
            Tags::only(Category::Shop).with(Category::Restaurant),
        )]);
        let poor = st(vec![sp(0.0, 0, Category::Shop)]);
        assert!(contains(&rich, &poor, EPS, DT));
        assert!(!contains(&poor, &rich, EPS, DT));
    }

    #[test]
    fn time_gap_blocks_containment() {
        let a = st(vec![
            sp(0.0, 0, Category::Residence),
            sp(1_000.0, 10_000, Category::Business), // gap > delta_t on st side
        ]);
        let b = st(vec![
            sp(0.0, 0, Category::Residence),
            sp(1_000.0, 1_800, Category::Business),
        ]);
        assert!(!contains(&a, &b, EPS, DT));
        // And a target whose own gaps violate delta_t is contained by nothing.
        let c = st(vec![
            sp(0.0, 0, Category::Residence),
            sp(1_000.0, 20_000, Category::Business),
        ]);
        assert!(!contains(&a, &c, EPS, DT));
    }

    #[test]
    fn subsequence_matching_skips_extra_stays() {
        let long = st(vec![
            sp(0.0, 0, Category::Residence),
            sp(500.0, 600, Category::Shop), // extra stop
            sp(1_000.0, 1_200, Category::Business),
        ]);
        let short = st(vec![
            sp(10.0, 0, Category::Residence),
            sp(1_010.0, 1_200, Category::Business),
        ]);
        let w = containment_witness(&long, &short, EPS, DT).unwrap();
        assert_eq!(w, vec![0, 2]);
    }

    #[test]
    fn backtracking_finds_non_greedy_witness() {
        // Greedy would match the first Residence (t=0) then fail the time
        // gap to Business (t=5000); the valid witness uses the second
        // Residence at t=4000.
        let long = st(vec![
            sp(0.0, 0, Category::Residence),
            sp(5.0, 4_000, Category::Residence),
            sp(1_000.0, 5_000, Category::Business),
        ]);
        let short = st(vec![
            sp(0.0, 100, Category::Residence),
            sp(1_000.0, 1_500, Category::Business),
        ]);
        let w = containment_witness(&long, &short, EPS, DT).unwrap();
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn longer_cannot_be_contained_by_shorter() {
        let a = st(vec![sp(0.0, 0, Category::Shop)]);
        let b = st(vec![
            sp(0.0, 0, Category::Shop),
            sp(10.0, 600, Category::Shop),
        ]);
        assert!(!contains(&a, &b, EPS, DT));
    }

    #[test]
    fn groups_collect_counterparts_per_position() {
        let mk = |shift: f64| {
            st(vec![
                sp(0.0 + shift, 0, Category::Business),
                sp(2_000.0 + shift, 1_200, Category::Residence),
            ])
        };
        let base = mk(0.0);
        let db = vec![mk(0.0), mk(30.0), mk(60.0), mk(5_000.0)];
        let g = groups(&base, &db, EPS, DT);
        assert_eq!(g.len(), 2);
        // base + mk(30) + mk(60); mk(0) in db is skipped as identical, and
        // mk(5000) is out of range.
        assert_eq!(g[0].len(), 3);
        assert_eq!(g[1].len(), 3);
    }
}

/// Definition 11 support: the number of database trajectories that contain
/// or reachable-contain `st` (`ST.sup(D)` in the paper's Table 2).
pub fn support(
    st: &SemanticTrajectory,
    db: &[SemanticTrajectory],
    eps_t: f64,
    delta_t: Timestamp,
) -> usize {
    db.iter()
        .filter(|candidate| counterpart(candidate, st, db, eps_t, delta_t).is_some())
        .count()
}

/// Definition 11 evaluated directly: is `st` a fine-grained pattern of `db`
/// under support threshold `sigma` and density threshold `rho`? This is the
/// declarative oracle Algorithm 4 approximates with clustering; use it for
/// verification, not for mining (it is quadratic in the database).
pub fn is_fine_grained_pattern(
    st: &SemanticTrajectory,
    db: &[SemanticTrajectory],
    eps_t: f64,
    delta_t: Timestamp,
    sigma: usize,
    rho: f64,
) -> bool {
    if st.is_empty() {
        return false;
    }
    let gs = groups(st, db, eps_t, delta_t);
    // Support counts trajectories beyond the pattern itself.
    let sup = gs[0].len() - 1;
    if sup < sigma {
        return false;
    }
    let avg_den = gs
        .iter()
        .map(|g| {
            let pts: Vec<pm_geo::LocalPoint> = g.iter().map(|sp| sp.pos).collect();
            pm_geo::den(&pts).min(1e6) // cap degenerate infinities
        })
        .sum::<f64>()
        / gs.len() as f64;
    avg_den >= rho
}

#[cfg(test)]
mod def11_tests {
    use super::*;
    use crate::types::{Category, Tags};
    use pm_geo::LocalPoint;

    fn sp(x: f64, t: Timestamp, c: Category) -> StayPoint {
        StayPoint::new(LocalPoint::new(x, 0.0), t, Tags::only(c))
    }

    fn commute(shift: f64, t0: Timestamp) -> SemanticTrajectory {
        SemanticTrajectory::new(vec![
            sp(shift, t0, Category::Residence),
            sp(2_000.0 + shift, t0 + 1_500, Category::Business),
        ])
    }

    #[test]
    fn support_counts_containing_trajectories() {
        let pattern = commute(0.0, 7 * 3600);
        let db: Vec<SemanticTrajectory> = (0..12)
            .map(|i| commute(i as f64 * 5.0, 7 * 3600 + i as i64 * 60))
            .collect();
        let sup = support(&pattern, &db, 100.0, 3_600);
        assert_eq!(sup, 12, "every jittered commute contains the pattern");
    }

    #[test]
    fn definition_11_accepts_dense_supported_patterns() {
        let pattern = commute(0.0, 7 * 3600);
        let db: Vec<SemanticTrajectory> = (0..12)
            .map(|i| commute(i as f64 * 5.0, 7 * 3600 + i as i64 * 60))
            .collect();
        assert!(is_fine_grained_pattern(
            &pattern, &db, 100.0, 3_600, 10, 1e-4
        ));
        // Too-high support bar fails.
        assert!(!is_fine_grained_pattern(
            &pattern, &db, 100.0, 3_600, 13, 1e-4
        ));
        // Too-high density bar fails.
        assert!(!is_fine_grained_pattern(
            &pattern, &db, 100.0, 3_600, 10, 10.0
        ));
    }

    #[test]
    fn empty_pattern_is_never_fine_grained() {
        let db = vec![commute(0.0, 0)];
        let empty = SemanticTrajectory::default();
        assert!(!is_fine_grained_pattern(&empty, &db, 100.0, 3_600, 1, 1e-9));
    }
}
