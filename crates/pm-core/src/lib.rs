//! **Pervasive Miner** and the **City Semantic Diagram (CSD)** — the primary
//! contribution of *"Extract Human Mobility Patterns Powered by City Semantic
//! Diagram"* (Shan, Sun, Zheng).
//!
//! The pipeline turns raw, semantics-free GPS taxi trajectories plus a POI
//! database into *fine-grained semantic mobility patterns* such as
//! `Residence -> Office` or `Office -> Supermarket`, addressing three
//! challenges: **semantic absence** (raw GPS has no tags), **semantic bias**
//! (social check-ins are topically skewed) and **semantic complexity**
//! (one location hosts many activities).
//!
//! # Pipeline
//!
//! 1. [`construct`] — build the CSD from POIs + stay-point popularity
//!    (Algorithms 1–2 and the merging step of §4.1).
//! 2. [`recognize`] — detect stay points (Definition 5) and assign each a
//!    semantic property by unit-level weighted voting (Algorithm 3).
//! 3. [`extract`] — mine fine-grained patterns with PrefixSpan + OPTICS +
//!    counterpart filtering (Algorithm 4, *CounterpartCluster*).
//!
//! [`metrics`] implements the paper's four evaluation metrics (#patterns,
//! coverage, spatial sparsity, semantic consistency — Eq. 9–12), and
//! [`params`] centralizes every threshold with the paper's defaults.
//!
//! # Quick start
//!
//! ```
//! use pm_core::prelude::*;
//! use pm_geo::LocalPoint;
//!
//! // A toy POI database: an office block and a residential block 1km apart.
//! let mut pois = Vec::new();
//! for i in 0..30 {
//!     let dx = (i % 6) as f64 * 12.0;
//!     let dy = (i / 6) as f64 * 12.0;
//!     pois.push(Poi::new(i, LocalPoint::new(dx, dy), Category::Business));
//!     pois.push(Poi::new(100 + i, LocalPoint::new(1000.0 + dx, dy), Category::Residence));
//! }
//! // Stay points visiting both blocks (8:30 commutes, one per day).
//! let day = 86_400;
//! let trajectories: Vec<SemanticTrajectory> = (0..60)
//!     .map(|d| SemanticTrajectory::new(vec![
//!         StayPoint::untagged(LocalPoint::new(1005.0, 25.0), d * day + 8 * 3600),
//!         StayPoint::untagged(LocalPoint::new(25.0, 25.0), d * day + 9 * 3600),
//!     ]))
//!     .collect();
//!
//! let params = MinerParams::default();
//! let csd = CitySemanticDiagram::build(&pois, &stay_points_of(&trajectories), &params)?;
//! assert!(csd.units().len() >= 2);
//! let recognized = recognize_all(&csd, trajectories, &params)?;
//! assert!(recognized[0].stays[0].tags.contains(Category::Residence));
//! # Ok::<(), pm_core::error::MinerError>(())
//! ```
//!
//! Both calls return `Result`: invalid [`MinerParams`] fail fast with a
//! typed [`error::MinerError`], while degenerate *data* (non-finite
//! coordinates, degenerate clusters) degrades gracefully and is reported
//! through [`construct::CitySemanticDiagram::degradations`] and the
//! `*_tracked` function variants in [`recognize`] and [`extract`].

pub mod construct;
pub mod contain;
pub mod error;
pub mod extract;
pub mod metrics;
pub mod params;
pub mod popularity;
pub mod query;
pub mod recognize;
pub mod types;

/// One-stop imports for pipeline users.
pub mod prelude {
    pub use crate::construct::CitySemanticDiagram;
    pub use crate::error::{Degradation, MinerError};
    pub use crate::extract::{extract_patterns, FinePattern};
    pub use crate::metrics::{PatternMetrics, PatternSetSummary};
    pub use crate::params::MinerParams;
    pub use crate::query::PatternQuery;
    pub use crate::recognize::{recognize_all, stay_points_of};
    pub use crate::types::{
        Category, GpsPoint, GpsTrajectory, Poi, SemanticTrajectory, StayPoint, Tags, Timestamp,
    };
}

pub use prelude::*;
