//! POI popularity estimation from stay-point density (paper Eq. 2–3).
//!
//! The popularity of a POI is the kernel-density estimate of stay points
//! around it: every historical pick-up/drop-off within `R_3sigma` of the POI
//! contributes its Gaussian coefficient. The Gaussian models GPS noise — a
//! recorded stop is evidence for the *area* around it, not the exact point.

use pm_cluster::GaussianKernel;
use pm_geo::{GridIndex, LocalPoint};

/// Kernel-density popularity model over a stay-point corpus.
#[derive(Debug, Clone)]
pub struct PopularityModel {
    kernel: GaussianKernel,
    stays: GridIndex,
}

impl PopularityModel {
    /// Builds the model from the corpus of stay-point locations (`D_sp` in
    /// the paper) and the GPS-noise radius `R_3sigma`.
    pub fn build(stay_points: &[LocalPoint], r3sigma: f64) -> Self {
        Self {
            kernel: GaussianKernel::new(r3sigma),
            stays: GridIndex::build(stay_points, r3sigma),
        }
    }

    /// Eq. 3: the popularity of a location — the sum of Gaussian
    /// coefficients of all stay points within `R_3sigma`.
    pub fn popularity(&self, pos: LocalPoint) -> f64 {
        let mut total = 0.0;
        for idx in self.stays.range(pos, self.kernel.cutoff()) {
            total += self.kernel.coeff(self.stays.point(idx), pos);
        }
        total
    }

    /// Batch popularity for a slice of positions.
    ///
    /// Serial convenience form of [`Self::popularity_of_threads`].
    pub fn popularity_of(&self, positions: &[LocalPoint]) -> Vec<f64> {
        self.popularity_of_threads(positions, 1)
    }

    /// Batch popularity across `threads` workers (`0` = all cores).
    ///
    /// Each query position is an independent kernel sum over its own
    /// neighbourhood, so workers fill disjoint slots of the output and the
    /// per-slot accumulation order is the index order of the grid cells —
    /// the result is bit-identical for every thread count.
    pub fn popularity_of_threads(&self, positions: &[LocalPoint], threads: usize) -> Vec<f64> {
        pm_runtime::par_map(positions, threads, |p| self.popularity(*p))
    }

    /// The kernel in use (shared with semantic recognition).
    pub fn kernel(&self) -> GaussianKernel {
        self.kernel
    }

    /// Number of stay points backing the model.
    pub fn n_stays(&self) -> usize {
        self.stays.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_corpus_gives_zero_popularity() {
        let m = PopularityModel::build(&[], 100.0);
        assert_eq!(m.popularity(LocalPoint::ORIGIN), 0.0);
        assert_eq!(m.n_stays(), 0);
    }

    #[test]
    fn popularity_scales_with_stay_count() {
        let near: Vec<LocalPoint> = (0..10).map(|i| LocalPoint::new(i as f64, 0.0)).collect();
        let m1 = PopularityModel::build(&near, 100.0);
        let mut doubled = near.clone();
        doubled.extend(near.iter().copied());
        let m2 = PopularityModel::build(&doubled, 100.0);
        let p1 = m1.popularity(LocalPoint::ORIGIN);
        let p2 = m2.popularity(LocalPoint::ORIGIN);
        assert!((p2 - 2.0 * p1).abs() < 1e-9);
    }

    #[test]
    fn closer_stays_contribute_more() {
        let m_near = PopularityModel::build(&[LocalPoint::new(10.0, 0.0)], 100.0);
        let m_far = PopularityModel::build(&[LocalPoint::new(90.0, 0.0)], 100.0);
        assert!(m_near.popularity(LocalPoint::ORIGIN) > m_far.popularity(LocalPoint::ORIGIN));
    }

    #[test]
    fn stays_beyond_cutoff_are_ignored() {
        let m = PopularityModel::build(&[LocalPoint::new(150.0, 0.0)], 100.0);
        assert_eq!(m.popularity(LocalPoint::ORIGIN), 0.0);
    }

    #[test]
    fn batch_matches_single() {
        let stays: Vec<LocalPoint> = (0..20)
            .map(|i| LocalPoint::new((i * 13 % 70) as f64, (i * 7 % 50) as f64))
            .collect();
        let m = PopularityModel::build(&stays, 100.0);
        let queries = [LocalPoint::ORIGIN, LocalPoint::new(40.0, 20.0)];
        let batch = m.popularity_of(&queries);
        assert_eq!(batch[0], m.popularity(queries[0]));
        assert_eq!(batch[1], m.popularity(queries[1]));
    }

    #[test]
    fn threaded_batch_is_bit_identical_to_serial() {
        let stays: Vec<LocalPoint> = (0..300)
            .map(|i| LocalPoint::new((i * 17 % 500) as f64, (i * 29 % 400) as f64))
            .collect();
        let m = PopularityModel::build(&stays, 100.0);
        let queries: Vec<LocalPoint> = (0..97)
            .map(|i| LocalPoint::new((i * 41 % 520) as f64, (i * 13 % 410) as f64))
            .collect();
        let serial = m.popularity_of(&queries);
        for threads in [2, 4, 7] {
            let parallel = m.popularity_of_threads(&queries, threads);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn popularity_peak_matches_eq2_peak() {
        // A single stay point exactly at the query: popularity equals the
        // kernel peak value.
        let m = PopularityModel::build(&[LocalPoint::ORIGIN], 100.0);
        let peak = GaussianKernel::new(100.0).coeff_at(0.0);
        assert!((m.popularity(LocalPoint::ORIGIN) - peak).abs() < 1e-12);
    }
}
