//! Semantic Recognizer (paper §4.2): stay-point detection (Definition 5)
//! and unit-level voting (Algorithm 3).

use crate::construct::CitySemanticDiagram;
use crate::error::{Degradation, MinerError};
use crate::params::MinerParams;
use crate::types::{Category, GpsPoint, GpsTrajectory, SemanticTrajectory, StayPoint, Tags};
use pm_cluster::GaussianKernel;
use pm_geo::LocalPoint;

/// Detects the stay points of a raw GPS trajectory per Definition 5.
///
/// Convenience wrapper over [`detect_stay_points_tracked`] that discards
/// degradation events.
pub fn detect_stay_points(traj: &GpsTrajectory, params: &MinerParams) -> Vec<StayPoint> {
    let mut events = Vec::new();
    detect_stay_points_tracked(traj, params, &mut events)
}

/// Detects stay points, recording recoverable trouble in `events`.
///
/// A maximal sub-trajectory whose fixes all stay within `theta_d` of its
/// first fix and which spans at least `theta_t` seconds collapses into one
/// stay point at the mean position/time of the window. (The taxi corpus of
/// §5 bypasses this — pick-up/drop-off records *are* the stay points — but
/// the general detector is part of the published system.)
///
/// Fixes with non-finite coordinates are dropped before detection (reported
/// as [`Degradation::DroppedGpsFixes`]); time arithmetic saturates and
/// averages in 128-bit so corrupted timestamps cannot overflow.
pub fn detect_stay_points_tracked(
    traj: &GpsTrajectory,
    params: &MinerParams,
    events: &mut Vec<Degradation>,
) -> Vec<StayPoint> {
    let n_bad = traj
        .points
        .iter()
        .filter(|p| !(p.pos.x.is_finite() && p.pos.y.is_finite()))
        .count();
    let finite: Vec<GpsPoint>;
    let pts: &[GpsPoint] = if n_bad > 0 {
        events.push(Degradation::DroppedGpsFixes { count: n_bad });
        finite = traj
            .points
            .iter()
            .filter(|p| p.pos.x.is_finite() && p.pos.y.is_finite())
            .copied()
            .collect();
        &finite
    } else {
        &traj.points
    };

    let mut stays = Vec::new();
    let mut i = 0;
    while i < pts.len() {
        // Grow the window while every fix stays within theta_d of fix i.
        let mut j = i;
        while j + 1 < pts.len() && pts[j + 1].pos.distance(&pts[i].pos) <= params.theta_d {
            j += 1;
        }
        if pts[j].time.saturating_sub(pts[i].time) >= params.theta_t {
            stays.push(collapse_window(&pts[i..=j]));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    stays
}

/// Collapses one dwell window — a run of fixes all within `theta_d` of its
/// first fix — into its stay point: mean position, mean timestamp.
///
/// This is the single arithmetic used by both the batch detector above and
/// pm-stream's incremental detector, so their outputs are bit-identical:
/// positions sum in encounter order and times average in 128-bit, exactly
/// as [`detect_stay_points_tracked`] always did. An empty window yields an
/// origin stay at time 0 rather than panicking (callers never pass one).
pub fn collapse_window(window: &[GpsPoint]) -> StayPoint {
    let n = window.len().max(1);
    let mut sum = LocalPoint::ORIGIN;
    let mut t_sum: i128 = 0;
    for p in window {
        sum = sum + p.pos;
        t_sum += p.time as i128;
    }
    StayPoint::untagged(sum / n as f64, (t_sum / n as i128) as i64)
}

/// Converts a GPS trajectory into an (untagged) semantic trajectory — the
/// `SemanticTrajectory` function invoked in Algorithm 3 line 3.
pub fn semantic_trajectory(traj: &GpsTrajectory, params: &MinerParams) -> SemanticTrajectory {
    SemanticTrajectory::new(detect_stay_points(traj, params))
}

/// Definition 5 over a whole corpus: stay-point detection of every raw
/// trajectory, fanned out over `params.threads` workers (each journey is
/// independent, so workers fill disjoint output slots and the result is
/// bit-identical to the serial loop). Degradation events are folded back in
/// trajectory order, exactly as a serial sweep would record them.
pub fn detect_all_stay_points_tracked(
    trajectories: &[GpsTrajectory],
    params: &MinerParams,
    events: &mut Vec<Degradation>,
) -> Vec<Vec<StayPoint>> {
    detect_all_stay_points_observed(trajectories, params, events, &pm_obs::Obs::noop())
}

/// [`detect_all_stay_points_tracked`] under observation: the corpus sweep is
/// timed as a `recognize.stay_detect` span and the extracted stay points are
/// counted. The detected stay points are byte-identical either way.
pub fn detect_all_stay_points_observed(
    trajectories: &[GpsTrajectory],
    params: &MinerParams,
    events: &mut Vec<Degradation>,
    obs: &pm_obs::Obs,
) -> Vec<Vec<StayPoint>> {
    let span = obs.span("recognize.stay_detect");
    let per_traj = pm_runtime::par_map(trajectories, params.threads, |traj| {
        let mut local = Vec::new();
        let stays = detect_stay_points_tracked(traj, params, &mut local);
        (stays, local)
    });
    let mut out = Vec::with_capacity(per_traj.len());
    for (stays, local) in per_traj {
        events.extend(local);
        out.push(stays);
    }
    span.finish();
    obs.incr(
        "recognize.stay_points",
        out.iter().map(|s| s.len() as u64).sum(),
    );
    out
}

/// Batch form of [`semantic_trajectory`]: Definition 5 across the corpus on
/// `params.threads` workers, discarding degradation events.
pub fn semantic_trajectories_of(
    trajectories: &[GpsTrajectory],
    params: &MinerParams,
) -> Vec<SemanticTrajectory> {
    let mut events = Vec::new();
    detect_all_stay_points_tracked(trajectories, params, &mut events)
        .into_iter()
        .map(SemanticTrajectory::new)
        .collect()
}

/// Algorithm 3 lines 4–11: assigns the semantic property of one stay point
/// by weighted voting among the fine-grained units around it.
///
/// Every POI within `R_3sigma` votes for its unit with weight
/// `pop(p) * ||p, sp||`; the winning unit donates the union of categories of
/// its *in-range* members. Stay points with no unit-owned POI in range stay
/// untagged ([`Tags::EMPTY`]).
pub fn recognize_stay_point(
    csd: &CitySemanticDiagram,
    kernel: &GaussianKernel,
    pos: LocalPoint,
) -> Tags {
    recognize_stay_point_full(csd, kernel, pos).0
}

/// Like [`recognize_stay_point`], additionally returning the *primary*
/// category: the strongest-voting category within the winning unit, which
/// drives the sequence-mining item for multi-tag units.
pub fn recognize_stay_point_full(
    csd: &CitySemanticDiagram,
    kernel: &GaussianKernel,
    pos: LocalPoint,
) -> (Tags, Option<Category>) {
    let (_unit, tags, primary, _ballots) = vote(csd, kernel, pos);
    (tags, primary)
}

/// Like [`recognize_stay_point_full`], additionally returning the id of the
/// winning semantic unit (an index into
/// [`CitySemanticDiagram::units`](crate::construct::CitySemanticDiagram::units)).
/// This is the point-lookup primitive of the online query service: "which
/// unit am I standing in, and what happens there?". `None` when no
/// unit-owned POI lies within the kernel cutoff of `pos`.
pub fn recognize_stay_point_unit(
    csd: &CitySemanticDiagram,
    kernel: &GaussianKernel,
    pos: LocalPoint,
) -> (Option<usize>, Tags, Option<Category>) {
    let (unit, tags, primary, _ballots) = vote(csd, kernel, pos);
    (unit, tags, primary)
}

/// The voting core of Algorithm 3, additionally reporting the winning unit
/// id and how many ballots were cast (one per in-range unit-owned POI) so
/// observed runs can count voting work without a second range query.
fn vote(
    csd: &CitySemanticDiagram,
    kernel: &GaussianKernel,
    pos: LocalPoint,
) -> (Option<usize>, Tags, Option<Category>, u64) {
    // A non-finite query position has no meaningful neighbourhood; the stay
    // point remains untagged rather than poisoning the vote weights.
    if !(pos.x.is_finite() && pos.y.is_finite()) {
        return (None, Tags::EMPTY, None, 0);
    }
    let in_range = csd.range(pos, kernel.cutoff());
    if in_range.is_empty() {
        return (None, Tags::EMPTY, None, 0);
    }
    // Sparse vote accumulation: the candidate unit list is tiny (a handful
    // of units overlap a 100 m disk), so linear scans beat hashing.
    let mut unit_ids: Vec<usize> = Vec::new();
    let mut votes: Vec<f64> = Vec::new();
    let mut tags: Vec<Tags> = Vec::new();
    let mut cat_votes: Vec<[f64; Category::COUNT]> = Vec::new();
    let mut ballots = 0u64;
    for &i in &in_range {
        let Some(uid) = csd.unit_of(i) else { continue };
        ballots += 1;
        let weight = csd.popularity(i) * kernel.coeff(csd.pois()[i].pos, pos);
        let slot = match unit_ids.iter().position(|&u| u == uid) {
            Some(s) => s,
            None => {
                unit_ids.push(uid);
                votes.push(0.0);
                tags.push(Tags::EMPTY);
                cat_votes.push([0.0; Category::COUNT]);
                unit_ids.len() - 1
            }
        };
        votes[slot] += weight;
        tags[slot] = tags[slot].with(csd.pois()[i].category);
        cat_votes[slot][csd.pois()[i].category as usize] += weight;
    }
    let Some(hv) = votes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
    else {
        // No unit-owned POI in range: the stay point stays untagged.
        return (None, Tags::EMPTY, None, ballots);
    };
    let primary = cat_votes[hv]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(c, _)| Category::from_index(c));
    (Some(unit_ids[hv]), tags[hv], primary, ballots)
}

/// Algorithm 3 in full: recognizes the semantic property of every stay point
/// of every trajectory. Consumes and returns the trajectories with tags
/// filled in. Fails only on invalid parameters; degenerate stay points are
/// tolerated (left untagged).
pub fn recognize_all(
    csd: &CitySemanticDiagram,
    trajectories: Vec<SemanticTrajectory>,
    params: &MinerParams,
) -> Result<Vec<SemanticTrajectory>, MinerError> {
    let mut events = Vec::new();
    recognize_all_tracked(csd, trajectories, params, &mut events)
}

/// Like [`recognize_all`], additionally recording how many stay points were
/// left untagged because their position is non-finite.
pub fn recognize_all_tracked(
    csd: &CitySemanticDiagram,
    trajectories: Vec<SemanticTrajectory>,
    params: &MinerParams,
    events: &mut Vec<Degradation>,
) -> Result<Vec<SemanticTrajectory>, MinerError> {
    recognize_all_observed(csd, trajectories, params, events, &pm_obs::Obs::noop())
}

/// [`recognize_all_tracked`] under observation: the voting sweep is timed as
/// a `recognize.vote` span, and tagged/untagged stay points plus the ballots
/// cast (one per in-range unit-owned POI) are counted. The tagging produced
/// is byte-identical to an unobserved run.
pub fn recognize_all_observed(
    csd: &CitySemanticDiagram,
    trajectories: Vec<SemanticTrajectory>,
    params: &MinerParams,
    events: &mut Vec<Degradation>,
    obs: &pm_obs::Obs,
) -> Result<Vec<SemanticTrajectory>, MinerError> {
    params.validate()?;
    let kernel = GaussianKernel::new(params.r3sigma);
    let span = obs.span("recognize.vote");
    // Unit voting is a pure function of the (immutable) diagram and one stay
    // position, so trajectories tag independently: workers update disjoint
    // chunks in place and report per-trajectory tallies, which sum to the
    // same totals in any order.
    let mut trajectories = trajectories;
    let tallies: Vec<(usize, u64, u64, u64)> =
        pm_runtime::par_map_in_place(&mut trajectories, params.threads, |st| {
            let (mut n, mut tagged, mut untagged, mut ballots) = (0usize, 0u64, 0u64, 0u64);
            for sp in &mut st.stays {
                if !(sp.pos.x.is_finite() && sp.pos.y.is_finite()) {
                    n += 1;
                    untagged += 1;
                    sp.tags = Tags::EMPTY;
                    sp.primary = None;
                    continue;
                }
                let (_unit, tags, primary, b) = vote(csd, &kernel, sp.pos);
                ballots += b;
                if tags.is_empty() {
                    untagged += 1;
                } else {
                    tagged += 1;
                }
                sp.tags = tags;
                sp.primary = primary;
            }
            (n, tagged, untagged, ballots)
        });
    span.finish();
    let (mut n_nonfinite, mut tagged, mut untagged, mut ballots) = (0usize, 0u64, 0u64, 0u64);
    for (n, t, u, b) in tallies {
        n_nonfinite += n;
        tagged += t;
        untagged += u;
        ballots += b;
    }
    obs.incr("recognize.stays_tagged", tagged);
    obs.incr("recognize.stays_untagged", untagged);
    obs.incr("recognize.votes_cast", ballots);
    if n_nonfinite > 0 {
        events.push(Degradation::UntaggedNonFiniteStays { count: n_nonfinite });
    }
    Ok(trajectories)
}

/// Collects every stay-point location in a trajectory set — the `D_sp`
/// corpus that drives popularity estimation (Eq. 3).
pub fn stay_points_of(trajectories: &[SemanticTrajectory]) -> Vec<LocalPoint> {
    trajectories
        .iter()
        .flat_map(|st| st.stays.iter().map(|sp| sp.pos))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Category, GpsPoint, Poi};

    fn gps(x: f64, y: f64, t: i64) -> GpsPoint {
        GpsPoint::new(LocalPoint::new(x, y), t)
    }

    #[test]
    fn detects_a_dwell_as_one_stay_point() {
        // 30 minutes parked at ~(100, 100), then movement.
        let mut pts = Vec::new();
        for k in 0..30 {
            pts.push(gps(100.0 + (k % 3) as f64, 100.0, k * 60));
        }
        for k in 0..10 {
            pts.push(gps(100.0 + 500.0 * (k + 1) as f64, 100.0, 1800 + k * 60));
        }
        let stays = detect_stay_points(&GpsTrajectory::new(pts), &MinerParams::default());
        assert_eq!(stays.len(), 1);
        assert!(stays[0].pos.distance(&LocalPoint::new(101.0, 100.0)) < 5.0);
        assert!(stays[0].tags.is_empty());
    }

    #[test]
    fn short_dwell_is_not_a_stay_point() {
        // Only 5 minutes below theta_t = 20 min.
        let pts: Vec<GpsPoint> = (0..5).map(|k| gps(0.0, 0.0, k * 60)).collect();
        let stays = detect_stay_points(&GpsTrajectory::new(pts), &MinerParams::default());
        assert!(stays.is_empty());
    }

    #[test]
    fn moving_trajectory_has_no_stay_points() {
        let pts: Vec<GpsPoint> = (0..60)
            .map(|k| gps(k as f64 * 300.0, 0.0, k * 60))
            .collect();
        let stays = detect_stay_points(&GpsTrajectory::new(pts), &MinerParams::default());
        assert!(stays.is_empty());
    }

    #[test]
    fn two_dwells_two_stay_points() {
        let mut pts = Vec::new();
        for k in 0..25 {
            pts.push(gps(0.0, 0.0, k * 60));
        }
        for k in 0..5 {
            pts.push(gps(5_000.0 * (k + 1) as f64 / 5.0, 0.0, 1500 + k * 60));
        }
        for k in 0..25 {
            pts.push(gps(5_000.0, 0.0, 1800 + k * 60));
        }
        let stays = detect_stay_points(&GpsTrajectory::new(pts), &MinerParams::default());
        assert_eq!(stays.len(), 2);
        assert!(stays[0].time < stays[1].time);
    }

    #[test]
    fn empty_trajectory() {
        let stays = detect_stay_points(&GpsTrajectory::default(), &MinerParams::default());
        assert!(stays.is_empty());
    }

    /// Build the diagram of the Fig. 7 scenario: a popular shop unit and a
    /// less popular office unit near a query stay point.
    fn fig7_setup() -> (CitySemanticDiagram, MinerParams) {
        let params = MinerParams {
            min_pts: 4,
            ..MinerParams::default()
        };
        let mut pois = Vec::new();
        // Shop unit: 6 POIs ~30m east of the query origin.
        for i in 0..6 {
            pois.push(Poi::new(
                i,
                LocalPoint::new(30.0 + (i % 3) as f64 * 8.0, (i / 3) as f64 * 8.0),
                Category::Shop,
            ));
        }
        // Office unit: 6 POIs ~70m west.
        for i in 0..6 {
            pois.push(Poi::new(
                10 + i,
                LocalPoint::new(-70.0 - (i % 3) as f64 * 8.0, (i / 3) as f64 * 8.0),
                Category::Business,
            ));
        }
        // Stay corpus: the shop side is visited 5x more.
        let mut stays = Vec::new();
        for k in 0..50 {
            stays.push(LocalPoint::new(
                32.0 + (k % 5) as f64 * 4.0,
                (k % 4) as f64 * 4.0,
            ));
        }
        for k in 0..10 {
            stays.push(LocalPoint::new(
                -72.0 - (k % 5) as f64 * 4.0,
                (k % 4) as f64 * 4.0,
            ));
        }
        (
            CitySemanticDiagram::build(&pois, &stays, &params).expect("build"),
            params,
        )
    }

    #[test]
    fn voting_prefers_popular_nearby_unit() {
        let (csd, params) = fig7_setup();
        let kernel = GaussianKernel::new(params.r3sigma);
        let tags = recognize_stay_point(&csd, &kernel, LocalPoint::ORIGIN);
        assert!(tags.contains(Category::Shop), "got {tags}");
        assert!(!tags.contains(Category::Business));
    }

    #[test]
    fn far_stay_point_stays_untagged() {
        let (csd, params) = fig7_setup();
        let kernel = GaussianKernel::new(params.r3sigma);
        let tags = recognize_stay_point(&csd, &kernel, LocalPoint::new(10_000.0, 0.0));
        assert!(tags.is_empty());
    }

    #[test]
    fn recognize_all_fills_every_stay() {
        let (csd, params) = fig7_setup();
        let trajs = vec![SemanticTrajectory::new(vec![
            StayPoint::untagged(LocalPoint::new(0.0, 0.0), 0),
            StayPoint::untagged(LocalPoint::new(-65.0, 0.0), 3600),
        ])];
        let out = recognize_all(&csd, trajs, &params).expect("recognize");
        assert!(out[0].stays[0].tags.contains(Category::Shop));
        assert!(out[0].stays[1].tags.contains(Category::Business));
    }

    #[test]
    fn non_finite_stay_is_left_untagged_with_degradation() {
        let (csd, params) = fig7_setup();
        let trajs = vec![SemanticTrajectory::new(vec![
            StayPoint::untagged(LocalPoint::new(f64::NAN, 0.0), 0),
            StayPoint::untagged(LocalPoint::new(0.0, 0.0), 3600),
        ])];
        let mut events = Vec::new();
        let out = recognize_all_tracked(&csd, trajs, &params, &mut events).expect("recognize");
        assert!(out[0].stays[0].tags.is_empty());
        assert!(out[0].stays[1].tags.contains(Category::Shop));
        assert_eq!(
            events,
            vec![Degradation::UntaggedNonFiniteStays { count: 1 }]
        );
    }

    #[test]
    fn invalid_params_are_rejected() {
        let (csd, _) = fig7_setup();
        let bad = MinerParams {
            sigma: 0,
            ..MinerParams::default()
        };
        assert!(recognize_all(&csd, Vec::new(), &bad).is_err());
    }

    #[test]
    fn non_finite_fixes_are_dropped_before_detection() {
        // A clean 30-minute dwell with NaN and infinite fixes interleaved:
        // the dwell must still be detected, and the drops reported.
        let mut pts = Vec::new();
        for k in 0..30 {
            pts.push(gps(100.0 + (k % 3) as f64, 100.0, k * 60));
            if k % 10 == 0 {
                pts.push(GpsPoint::new(LocalPoint::new(f64::NAN, 100.0), k * 60 + 30));
            }
        }
        pts.push(GpsPoint::new(
            LocalPoint::new(f64::INFINITY, f64::NEG_INFINITY),
            1790,
        ));
        let mut events = Vec::new();
        let stays = detect_stay_points_tracked(
            &GpsTrajectory::new(pts),
            &MinerParams::default(),
            &mut events,
        );
        assert_eq!(stays.len(), 1);
        assert!(stays[0].pos.x.is_finite() && stays[0].pos.y.is_finite());
        assert_eq!(events, vec![Degradation::DroppedGpsFixes { count: 4 }]);
    }

    #[test]
    fn extreme_timestamps_do_not_overflow() {
        // Timestamps near i64::MAX: window arithmetic saturates and the
        // average is computed in 128-bit, so nothing overflows.
        let base = i64::MAX - 10_000;
        let pts: Vec<GpsPoint> = (0..30).map(|k| gps(0.0, 0.0, base + k * 60)).collect();
        let stays = detect_stay_points(&GpsTrajectory::new(pts), &MinerParams::default());
        assert_eq!(stays.len(), 1);
    }

    #[test]
    fn batch_detection_matches_per_trajectory_detection() {
        let mut tracks = Vec::new();
        for t in 0..9i64 {
            let mut pts = Vec::new();
            for k in 0..30 {
                pts.push(gps(
                    100.0 * t as f64 + (k % 3) as f64,
                    0.0,
                    t * 10_000 + k * 60,
                ));
            }
            if t % 3 == 0 {
                pts.push(GpsPoint::new(
                    LocalPoint::new(f64::NAN, 0.0),
                    t * 10_000 + 1795,
                ));
            }
            tracks.push(GpsTrajectory::new(pts));
        }
        let params = MinerParams::default();
        let mut serial_events = Vec::new();
        let serial: Vec<Vec<StayPoint>> = tracks
            .iter()
            .map(|t| detect_stay_points_tracked(t, &params, &mut serial_events))
            .collect();
        for threads in [1, 4] {
            let p = MinerParams { threads, ..params };
            let mut events = Vec::new();
            let batch = detect_all_stay_points_tracked(&tracks, &p, &mut events);
            assert_eq!(batch, serial, "threads = {threads}");
            assert_eq!(events, serial_events);
        }
        let trajs = semantic_trajectories_of(&tracks, &params);
        assert_eq!(trajs.len(), tracks.len());
        assert_eq!(trajs[0].stays, serial[0]);
    }

    #[test]
    fn threaded_recognition_matches_serial() {
        let (csd, params) = fig7_setup();
        let trajs: Vec<SemanticTrajectory> = (0..13)
            .map(|i| {
                SemanticTrajectory::new(vec![
                    StayPoint::untagged(LocalPoint::new(i as f64 * 3.0, 0.0), 0),
                    StayPoint::untagged(LocalPoint::new(-65.0 - i as f64, 0.0), 3600),
                ])
            })
            .collect();
        let serial = recognize_all(&csd, trajs.clone(), &params.with_threads(1)).expect("serial");
        let parallel = recognize_all(&csd, trajs, &params.with_threads(4)).expect("parallel");
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.stays, b.stays);
        }
    }

    #[test]
    fn stay_points_of_flattens() {
        let trajs = vec![
            SemanticTrajectory::new(vec![StayPoint::untagged(LocalPoint::new(1.0, 2.0), 0)]),
            SemanticTrajectory::new(vec![
                StayPoint::untagged(LocalPoint::new(3.0, 4.0), 0),
                StayPoint::untagged(LocalPoint::new(5.0, 6.0), 10),
            ]),
        ];
        let pts = stay_points_of(&trajs);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2], LocalPoint::new(5.0, 6.0));
    }
}
