//! Pattern query API: filter and rank mined patterns.
//!
//! The paper motivates pattern mining with downstream services — shopping
//! vouchers for `Office -> Shop` commuters, transit planning from common
//! flows, site selection from `Residence -> Supermarket` demand. This
//! module is that service surface: a fluent filter over a mined pattern
//! set by category transition, spatial region, time-of-week bucket and
//! support.

use crate::extract::FinePattern;
use crate::types::{Category, WeekBucket};
use pm_geo::{BoundingBox, LocalPoint};

/// A fluent query over a pattern set. Filters compose with AND semantics;
/// results are returned in the pattern set's (support-descending) order.
#[derive(Debug, Clone, Default)]
pub struct PatternQuery {
    from: Option<Category>,
    to: Option<Category>,
    involves: Option<Category>,
    within: Option<BoundingBox>,
    near: Option<(LocalPoint, f64)>,
    bucket: Option<WeekBucket>,
    min_support: Option<usize>,
    min_len: Option<usize>,
    max_len: Option<usize>,
}

impl PatternQuery {
    /// A query matching every pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep patterns whose first stay has this category.
    #[must_use]
    pub fn from_category(mut self, c: Category) -> Self {
        self.from = Some(c);
        self
    }

    /// Keep patterns whose last stay has this category.
    #[must_use]
    pub fn to_category(mut self, c: Category) -> Self {
        self.to = Some(c);
        self
    }

    /// Keep patterns visiting this category at any position.
    #[must_use]
    pub fn involving(mut self, c: Category) -> Self {
        self.involves = Some(c);
        self
    }

    /// Keep patterns whose representative stays all lie inside the box.
    #[must_use]
    pub fn within(mut self, bbox: BoundingBox) -> Self {
        self.within = Some(bbox);
        self
    }

    /// Keep patterns with at least one representative stay within `radius`
    /// meters of `center` (e.g. "around the airport").
    #[must_use]
    pub fn near(mut self, center: LocalPoint, radius: f64) -> Self {
        self.near = Some((center, radius));
        self
    }

    /// Keep patterns starting in this time-of-week bucket.
    #[must_use]
    pub fn in_bucket(mut self, bucket: WeekBucket) -> Self {
        self.bucket = Some(bucket);
        self
    }

    /// Keep patterns with at least this support.
    #[must_use]
    pub fn min_support(mut self, s: usize) -> Self {
        self.min_support = Some(s);
        self
    }

    /// Keep patterns with at least this many stays.
    #[must_use]
    pub fn min_len(mut self, l: usize) -> Self {
        self.min_len = Some(l);
        self
    }

    /// Keep patterns with at most this many stays.
    #[must_use]
    pub fn max_len(mut self, l: usize) -> Self {
        self.max_len = Some(l);
        self
    }

    /// Whether one pattern matches every filter.
    pub fn matches(&self, p: &FinePattern) -> bool {
        if p.is_empty() {
            return false;
        }
        if let Some(c) = self.from {
            if p.categories[0] != c {
                return false;
            }
        }
        if let Some(c) = self.to {
            if *p.categories.last().expect("non-empty") != c {
                return false;
            }
        }
        if let Some(c) = self.involves {
            if !p.categories.contains(&c) {
                return false;
            }
        }
        if let Some(bb) = &self.within {
            if !p.stays.iter().all(|sp| bb.contains(sp.pos)) {
                return false;
            }
        }
        if let Some((center, radius)) = self.near {
            if !p.stays.iter().any(|sp| sp.pos.distance(&center) <= radius) {
                return false;
            }
        }
        if let Some(b) = self.bucket {
            if WeekBucket::of(p.stays[0].time) != b {
                return false;
            }
        }
        if let Some(s) = self.min_support {
            if p.support() < s {
                return false;
            }
        }
        if let Some(l) = self.min_len {
            if p.len() < l {
                return false;
            }
        }
        if let Some(l) = self.max_len {
            if p.len() > l {
                return false;
            }
        }
        true
    }

    /// Runs the query, borrowing matching patterns in input order.
    pub fn run<'a>(&self, patterns: &'a [FinePattern]) -> Vec<&'a FinePattern> {
        patterns.iter().filter(|p| self.matches(p)).collect()
    }

    /// Runs the query and returns the top-`k` by support.
    pub fn top_k<'a>(&self, patterns: &'a [FinePattern], k: usize) -> Vec<&'a FinePattern> {
        let mut hits = self.run(patterns);
        hits.sort_by_key(|p| std::cmp::Reverse(p.support()));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{StayPoint, Tags};

    fn pattern(cats: &[Category], xs: &[f64], t0: i64, support: usize) -> FinePattern {
        let stays: Vec<StayPoint> = cats
            .iter()
            .zip(xs)
            .enumerate()
            .map(|(k, (c, &x))| {
                StayPoint::new(
                    LocalPoint::new(x, 0.0),
                    t0 + k as i64 * 1800,
                    Tags::only(*c),
                )
            })
            .collect();
        let groups = stays.iter().map(|sp| vec![*sp; support]).collect();
        FinePattern {
            categories: cats.to_vec(),
            stays,
            members: (0..support).collect(),
            groups,
        }
    }

    fn sample() -> Vec<FinePattern> {
        vec![
            // Monday 08:00 commute.
            pattern(
                &[Category::Residence, Category::Business],
                &[0.0, 2_000.0],
                8 * 3600,
                80,
            ),
            // Monday 18:00 office -> shop -> home.
            pattern(
                &[Category::Business, Category::Shop, Category::Residence],
                &[2_000.0, 2_500.0, 0.0],
                18 * 3600,
                40,
            ),
            // Saturday 10:00 hospital run.
            pattern(
                &[Category::Residence, Category::Medical],
                &[0.0, 5_000.0],
                5 * 86_400 + 10 * 3600,
                25,
            ),
        ]
    }

    #[test]
    fn category_filters() {
        let ps = sample();
        let q = PatternQuery::new().from_category(Category::Residence);
        assert_eq!(q.run(&ps).len(), 2);
        let q = PatternQuery::new().to_category(Category::Residence);
        assert_eq!(q.run(&ps).len(), 1);
        let q = PatternQuery::new().involving(Category::Shop);
        assert_eq!(q.run(&ps).len(), 1);
        let q = PatternQuery::new()
            .from_category(Category::Residence)
            .to_category(Category::Medical);
        assert_eq!(q.run(&ps).len(), 1);
    }

    #[test]
    fn spatial_filters() {
        let ps = sample();
        let near_hospital = PatternQuery::new().near(LocalPoint::new(5_000.0, 0.0), 100.0);
        assert_eq!(near_hospital.run(&ps).len(), 1);
        let downtown = BoundingBox::new(
            LocalPoint::new(-100.0, -100.0),
            LocalPoint::new(3_000.0, 100.0),
        );
        let q = PatternQuery::new().within(downtown);
        assert_eq!(q.run(&ps).len(), 2, "hospital pattern leaves the box");
    }

    #[test]
    fn temporal_and_support_filters() {
        let ps = sample();
        let q = PatternQuery::new().in_bucket(WeekBucket::WeekdayMorning);
        assert_eq!(q.run(&ps).len(), 1);
        let q = PatternQuery::new().in_bucket(WeekBucket::WeekendMorning);
        assert_eq!(q.run(&ps).len(), 1);
        let q = PatternQuery::new().min_support(30);
        assert_eq!(q.run(&ps).len(), 2);
        let q = PatternQuery::new().min_len(3);
        assert_eq!(q.run(&ps).len(), 1);
        let q = PatternQuery::new().max_len(2);
        assert_eq!(q.run(&ps).len(), 2);
    }

    #[test]
    fn top_k_orders_by_support() {
        let ps = sample();
        let top = PatternQuery::new().top_k(&ps, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].support(), 80);
        assert_eq!(top[1].support(), 40);
    }

    #[test]
    fn empty_query_matches_all() {
        let ps = sample();
        assert_eq!(PatternQuery::new().run(&ps).len(), 3);
    }

    #[test]
    fn all_filters_compose_with_and_semantics() {
        let ps = sample();
        // Every filter at once, tuned so exactly the commute survives.
        let q = PatternQuery::new()
            .from_category(Category::Residence)
            .to_category(Category::Business)
            .involving(Category::Residence)
            .within(BoundingBox::new(
                LocalPoint::new(-100.0, -100.0),
                LocalPoint::new(3_000.0, 100.0),
            ))
            .near(LocalPoint::new(2_000.0, 0.0), 50.0)
            .in_bucket(WeekBucket::WeekdayMorning)
            .min_support(50)
            .min_len(2)
            .max_len(2);
        let hits = q.run(&ps);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].support(), 80);
        // Tightening any single leg of the conjunction empties the result.
        assert!(q.clone().min_support(81).run(&ps).is_empty());
        assert!(q
            .clone()
            .in_bucket(WeekBucket::WeekendMorning)
            .run(&ps)
            .is_empty());
        assert!(q.clone().to_category(Category::Medical).run(&ps).is_empty());
        assert!(q
            .near(LocalPoint::new(9_000.0, 0.0), 1.0)
            .run(&ps)
            .is_empty());
    }

    #[test]
    fn contradictory_filters_return_empty_not_error() {
        let ps = sample();
        let q = PatternQuery::new().min_len(3).max_len(2);
        assert!(q.run(&ps).is_empty());
        assert!(q.top_k(&ps, 10).is_empty());
        let q = PatternQuery::new()
            .from_category(Category::Medical)
            .to_category(Category::Medical);
        assert!(q.run(&ps).is_empty());
    }

    #[test]
    fn length_bounds_are_inclusive() {
        let ps = sample();
        // min_len == max_len == exact length selects precisely that length.
        let q = PatternQuery::new().min_len(3).max_len(3);
        let hits = q.run(&ps);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].len(), 3);
        // Degenerate bounds: min_len(0) keeps everything non-empty,
        // max_len(0) keeps nothing (empty patterns never match).
        assert_eq!(PatternQuery::new().min_len(0).run(&ps).len(), 3);
        assert!(PatternQuery::new().max_len(0).run(&ps).is_empty());
        let empty = FinePattern {
            categories: Vec::new(),
            stays: Vec::new(),
            members: Vec::new(),
            groups: Vec::new(),
        };
        assert!(!PatternQuery::new().matches(&empty));
    }
}
