//! Property-based tests for the pipeline core: containment relations, KL /
//! cosine invariants, purification postconditions and metric bounds.

use pm_core::construct::purify::{is_fine_grained, kl_divergence, purify};
use pm_core::contain::{containment_witness, contains};
use pm_core::prelude::*;
use pm_geo::LocalPoint;
use proptest::prelude::*;

fn category() -> impl Strategy<Value = Category> {
    (0usize..Category::COUNT).prop_map(Category::from_index)
}

fn tags() -> impl Strategy<Value = Tags> {
    prop::collection::vec(category(), 1..4).prop_map(Tags::from_iter)
}

fn stay_point() -> impl Strategy<Value = StayPoint> {
    (
        -2_000.0..2_000.0f64,
        -2_000.0..2_000.0f64,
        0i64..86_400,
        tags(),
    )
        .prop_map(|(x, y, t, tg)| StayPoint::new(LocalPoint::new(x, y), t, tg))
}

fn trajectory(max_len: usize) -> impl Strategy<Value = SemanticTrajectory> {
    prop::collection::vec(stay_point(), 1..max_len).prop_map(|mut stays| {
        stays.sort_by_key(|sp| sp.time);
        SemanticTrajectory::new(stays)
    })
}

fn distribution() -> impl Strategy<Value = [f64; Category::COUNT]> {
    prop::collection::vec(0.0..1.0f64, Category::COUNT).prop_map(|v| {
        let total: f64 = v.iter().sum::<f64>().max(1e-9);
        let mut d = [0.0; Category::COUNT];
        for (i, x) in v.into_iter().enumerate() {
            d[i] = x / total;
        }
        d
    })
}

proptest! {
    /// KL divergence is non-negative and zero on identical distributions.
    #[test]
    fn kl_gibbs_inequality(p in distribution(), q in distribution()) {
        prop_assert!(kl_divergence(&p, &q) >= 0.0);
        prop_assert!(kl_divergence(&p, &p) < 1e-9);
    }

    /// Tag-set cosine is symmetric, bounded, and 1 exactly on equal sets.
    #[test]
    fn tags_cosine_properties(a in tags(), b in tags()) {
        let ab = a.cosine(b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
        prop_assert!((ab - b.cosine(a)).abs() < 1e-12);
        prop_assert!((a.cosine(a) - 1.0).abs() < 1e-12);
        if ab >= 1.0 - 1e-12 {
            prop_assert_eq!(a, b);
        }
    }

    /// Containment is reflexive, and any witness returned is valid: index
    /// positions increase, distances/tags/time gaps all satisfy Def. 7.
    #[test]
    fn containment_reflexive_and_witness_valid(
        st in trajectory(5),
        st2 in trajectory(4),
        eps_t in 10.0..500.0f64,
    ) {
        let delta_t: i64 = 7_200;
        let gaps_ok = st.stays.windows(2).all(|w| w[1].time - w[0].time <= delta_t);
        if gaps_ok {
            prop_assert!(contains(&st, &st.clone(), eps_t, delta_t));
        }
        if let Some(w) = containment_witness(&st, &st2, eps_t, delta_t) {
            prop_assert_eq!(w.len(), st2.len());
            for k in 0..w.len() {
                if k > 0 {
                    prop_assert!(w[k - 1] < w[k]);
                    let gap = st.stays[w[k]].time - st.stays[w[k - 1]].time;
                    prop_assert!(gap.abs() <= delta_t);
                }
                prop_assert!(st.stays[w[k]].pos.distance(&st2.stays[k].pos) <= eps_t);
                prop_assert!(st.stays[w[k]].tags.is_superset(st2.stays[k].tags));
            }
        }
    }

    /// Purification preserves the POI partition and every output unit
    /// satisfies Definition 3's acceptance test.
    #[test]
    fn purification_postconditions(
        positions in prop::collection::vec(
            (0.0..500.0f64, 0.0..500.0f64), 2..40),
        cats in prop::collection::vec(0usize..4, 2..40),
    ) {
        let n = positions.len().min(cats.len());
        let pois: Vec<Poi> = (0..n)
            .map(|i| Poi::new(i as u64,
                LocalPoint::new(positions[i].0, positions[i].1),
                Category::from_index(cats[i])))
            .collect();
        let params = MinerParams::default();
        let units = purify(&pois, vec![(0..n).collect()], &params);
        // Partition: every POI in exactly one unit.
        let mut seen = vec![0usize; n];
        for u in &units {
            prop_assert!(is_fine_grained(&pois, u, &params));
            for &i in u {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }

    /// Extracted patterns satisfy Definition 11's structural guarantees:
    /// support >= sigma, aligned groups, representative points drawn from
    /// the groups, and density above rho at every position.
    #[test]
    fn extraction_postconditions(
        n in 6usize..20,
        jitter in 1.0..20.0f64,
        seedx in -1_000.0..1_000.0f64,
    ) {
        let db: Vec<SemanticTrajectory> = (0..n)
            .map(|i| {
                let dx = (i % 4) as f64 * jitter;
                SemanticTrajectory::new(vec![
                    StayPoint::new(LocalPoint::new(seedx + dx, 0.0), 7 * 3600,
                        Tags::only(Category::Residence)),
                    StayPoint::new(LocalPoint::new(seedx + 2_000.0 + dx, 0.0), 8 * 3600 - 900,
                        Tags::only(Category::Business)),
                ])
            })
            .collect();
        let params = MinerParams { sigma: 5, rho: 1e-6, ..MinerParams::default() };
        let patterns = extract_patterns(&db, &params).expect("valid params");
        for p in &patterns {
            prop_assert!(p.support() >= params.sigma);
            prop_assert_eq!(p.groups.len(), p.len());
            prop_assert_eq!(p.stays.len(), p.len());
            for (k, g) in p.groups.iter().enumerate() {
                prop_assert_eq!(g.len(), p.support());
                prop_assert!(g.iter().any(|sp| sp.pos == p.stays[k].pos));
                let pts: Vec<LocalPoint> = g.iter().map(|sp| sp.pos).collect();
                prop_assert!(pm_geo::den(&pts) >= params.rho);
            }
            let m = pm_core::metrics::pattern_metrics(p);
            prop_assert!(m.spatial_sparsity >= 0.0);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m.semantic_consistency));
        }
    }

    /// Stay-point detection output is time-ordered and within the input's
    /// spatio-temporal envelope.
    #[test]
    fn stay_detection_envelope(
        dwell_minutes in 5i64..90,
        step in 1.0..40.0f64,
    ) {
        let mut pts = Vec::new();
        for k in 0..dwell_minutes {
            pts.push(GpsPoint::new(LocalPoint::new((k % 3) as f64 * step.min(30.0), 0.0), k * 60));
        }
        let traj = GpsTrajectory::new(pts.clone());
        let params = MinerParams::default();
        let stays = pm_core::recognize::detect_stay_points(&traj, &params);
        for w in stays.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        for sp in &stays {
            prop_assert!(sp.time >= 0 && sp.time <= (dwell_minutes - 1) * 60);
            prop_assert!(sp.pos.x >= 0.0 && sp.pos.x <= 2.0 * step);
        }
        // A dwell of >= theta_t at one spot must be found.
        if dwell_minutes * 60 > params.theta_t + 60 && 2.0 * step <= params.theta_d {
            prop_assert!(!stays.is_empty());
        }
    }
}
