//! End-to-end smoke: synthetic city -> CSD -> recognition -> extraction.

use pm_core::prelude::*;
use pm_synth::{CityConfig, CityModel, TaxiCorpus};

#[test]
fn tiny_city_end_to_end() {
    let cfg = CityConfig::tiny(42);
    let city = CityModel::generate(&cfg);
    let pois = pm_synth::poi::generate_pois(&city);
    let corpus = TaxiCorpus::generate(&city);
    let trajs = corpus.semantic_trajectories();
    eprintln!(
        "pois={} journeys={} trajs={}",
        pois.len(),
        corpus.journeys.len(),
        trajs.len()
    );

    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    let stays = stay_points_of(&trajs);
    let csd = CitySemanticDiagram::build(&pois, &stays, &params).expect("build");
    eprintln!("csd stats: {:?}", csd.stats());
    assert!(csd.units().len() > 5);
    assert!(
        csd.degradations().is_empty(),
        "clean input must not degrade"
    );

    let recognized = recognize_all(&csd, trajs, &params).expect("recognize");
    let tagged: usize = recognized
        .iter()
        .flat_map(|t| &t.stays)
        .filter(|s| !s.tags.is_empty())
        .count();
    let total: usize = recognized.iter().map(|t| t.len()).sum();
    eprintln!("tagged {tagged}/{total}");
    assert!(
        tagged as f64 > total as f64 * 0.5,
        "tagged {tagged}/{total}"
    );

    let patterns = extract_patterns(&recognized, &params).expect("extract");
    eprintln!("patterns: {}", patterns.len());
    for p in patterns.iter().take(12) {
        let m = pm_core::metrics::pattern_metrics(p);
        eprintln!(
            "  {} sup={} ss={:.1} sc={:.3}",
            p.describe(),
            p.support(),
            m.spatial_sparsity,
            m.semantic_consistency
        );
    }
    assert!(!patterns.is_empty(), "expected fine-grained patterns");
    let summary = pm_core::metrics::summarize(&patterns);
    eprintln!("summary: {summary:?}");
    assert!(summary.avg_consistency > 0.9);
}
