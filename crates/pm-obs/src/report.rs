//! [`RunReport`]: the machine-readable summary of one observed run.
//!
//! The JSON schema (`pm-obs/1`) is deliberately boring and stable: objects
//! with sorted keys, stages sorted by name, fixed-precision milliseconds.
//! CI archives these documents per commit, so two reports from different
//! builds must diff cleanly field by field.

use crate::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Identifier of the serialized report layout.
pub const SCHEMA: &str = "pm-obs/1";

/// Aggregated timing of one named stage (all spans sharing a name).
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Dotted stage name, e.g. `construct.clustering`.
    pub name: String,
    /// How many spans closed under this name.
    pub calls: u64,
    /// Sum of span durations in milliseconds. For spans timed inside a
    /// parallel region this is *CPU-ish* time (worker-seconds), not wall
    /// time; the per-call min/max still bound individual invocations.
    pub total_ms: f64,
    /// Fastest single span.
    pub min_ms: f64,
    /// Slowest single span.
    pub max_ms: f64,
    /// Distinct `pm_runtime` worker slots the spans closed on (the calling
    /// thread counts as one slot).
    pub workers: u64,
}

/// Snapshot of everything an [`Obs`](crate::Obs) handle recorded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Wall-clock milliseconds from `Obs::enabled()` to the snapshot.
    pub wall_ms: f64,
    /// Resolved worker-thread count declared via `Obs::set_threads`.
    pub threads: u64,
    /// Per-stage timing, sorted by stage name.
    pub stages: Vec<StageReport>,
    /// Plain counters (everything not under a special prefix).
    pub counters: BTreeMap<String, u64>,
    /// Counters recorded under `degradation.` (prefix stripped): the
    /// pipeline's tolerated-trouble tallies.
    pub degradations: BTreeMap<String, u64>,
    /// Counters recorded under `quarantine.` (prefix stripped): records
    /// dropped by lenient ingestion.
    pub quarantine: BTreeMap<String, u64>,
    /// Named gauges (last write wins).
    pub gauges: BTreeMap<String, f64>,
}

impl RunReport {
    /// A well-formed all-empty report (what a no-op handle yields).
    pub fn empty() -> RunReport {
        RunReport {
            threads: 1,
            ..RunReport::default()
        }
    }

    /// Serializes to the stable `pm-obs/1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": ");
        json::write_str(&mut out, SCHEMA);
        let _ = write!(out, ",\n  \"wall_ms\": {}", json::millis(self.wall_ms));
        let _ = write!(out, ",\n  \"threads\": {}", self.threads);

        out.push_str(",\n  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            out.push_str("{\"name\": ");
            json::write_str(&mut out, &s.name);
            let _ = write!(
                out,
                ", \"calls\": {}, \"total_ms\": {}, \"min_ms\": {}, \"max_ms\": {}, \"workers\": {}}}",
                s.calls,
                json::millis(s.total_ms),
                json::millis(s.min_ms),
                json::millis(s.max_ms),
                s.workers
            );
        }
        out.push_str(if self.stages.is_empty() { "]" } else { "\n  ]" });

        let write_u64_map = |out: &mut String, key: &str, map: &BTreeMap<String, u64>| {
            let _ = write!(out, ",\n  \"{key}\": {{");
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(if i == 0 { "\n    " } else { ",\n    " });
                json::write_str(out, k);
                let _ = write!(out, ": {v}");
            }
            out.push_str(if map.is_empty() { "}" } else { "\n  }" });
        };
        write_u64_map(&mut out, "counters", &self.counters);
        write_u64_map(&mut out, "degradations", &self.degradations);
        write_u64_map(&mut out, "quarantine", &self.quarantine);

        out.push_str(",\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json::write_str(&mut out, k);
            let _ = write!(out, ": {}", json::number(*v));
        }
        out.push_str(if self.gauges.is_empty() { "}" } else { "\n  }" });

        out.push_str("\n}\n");
        out
    }

    /// Renders a human-readable text table (the `--report-format text` view).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report ({SCHEMA}): {:.1} ms wall, {} thread(s)",
            self.wall_ms, self.threads
        );
        if !self.stages.is_empty() {
            let _ = writeln!(
                out,
                "  {:<28} {:>7} {:>12} {:>12} {:>12} {:>8}",
                "stage", "calls", "total ms", "min ms", "max ms", "workers"
            );
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>8}",
                    s.name, s.calls, s.total_ms, s.min_ms, s.max_ms, s.workers
                );
            }
        }
        let section = |out: &mut String, title: &str, map: &BTreeMap<String, u64>| {
            if !map.is_empty() {
                let _ = writeln!(out, "  {title}:");
                for (k, v) in map {
                    let _ = writeln!(out, "    {k:<40} {v}");
                }
            }
        };
        section(&mut out, "counters", &self.counters);
        section(&mut out, "degradations", &self.degradations);
        section(&mut out, "quarantine", &self.quarantine);
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "  gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "    {k:<40} {v}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample() -> RunReport {
        let obs = Obs::enabled();
        obs.set_threads(4);
        {
            let _a = obs.span("construct.clustering");
            let _b = obs.span("construct.purify");
        }
        obs.incr("construct.coarse_clusters", 12);
        obs.incr("degradation.dropped_gps_fixes", 0);
        obs.incr("quarantine.journeys_dropped", 3);
        obs.gauge("input.pois", 1500.0);
        obs.report()
    }

    #[test]
    fn json_is_stable_and_parseable_shaped() {
        let r = sample();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b, "serialization must be deterministic");
        // Structural spot checks (no JSON parser in-tree).
        assert!(a.starts_with("{\n  \"schema\": \"pm-obs/1\""));
        assert!(a.contains("\"threads\": 4"));
        assert!(a.contains("\"construct.clustering\""));
        assert!(a.contains("\"degradations\": {\n    \"dropped_gps_fixes\": 0"));
        assert!(a.contains("\"quarantine\": {\n    \"journeys_dropped\": 3"));
        assert!(a.contains("\"input.pois\": 1500"));
        assert!(a.trim_end().ends_with('}'));
        // Balanced braces/brackets — cheap well-formedness smoke test.
        let balance = |open: char, close: char| {
            a.chars().filter(|&c| c == open).count() == a.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn stages_are_sorted_by_name() {
        let obs = Obs::enabled();
        {
            let _z = obs.span("z.last");
        }
        {
            let _a = obs.span("a.first");
        }
        let r = obs.report();
        let names: Vec<&str> = r.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }

    #[test]
    fn text_rendering_mentions_everything() {
        let t = sample().to_text();
        assert!(t.contains("construct.clustering"));
        assert!(t.contains("counters"));
        assert!(t.contains("degradations"));
        assert!(t.contains("quarantine"));
        assert!(t.contains("input.pois"));
    }

    #[test]
    fn empty_report_serializes() {
        let r = RunReport::empty();
        let j = r.to_json();
        assert!(j.contains("\"stages\": []"));
        assert!(j.contains("\"counters\": {}"));
        assert!(!r.to_text().is_empty());
    }
}
