//! Minimal JSON writing helpers (std-only, no serde).
//!
//! Just enough for [`RunReport`](crate::RunReport) and the bench harness:
//! string escaping and a number formatter that never emits tokens JSON
//! cannot parse (non-finite floats become `null`).

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal, quotes included.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` as a JSON number token; non-finite values become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip formatting; Rust's `Display` for finite f64
        // only emits digits, '.', '-', and 'e' exponents — all valid JSON.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders a millisecond quantity with fixed precision (stable field width
/// for diffs; 1 ns resolution is noise anyway).
pub fn millis(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-3.0), "-3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(millis(1.23456), "1.235");
        assert_eq!(millis(f64::NAN), "null");
    }
}
