//! **pm-obs** — the observability layer of the Pervasive Miner stack.
//!
//! Answers "where did this run spend its time and what did each stage
//! produce?" without attaching a profiler:
//!
//! - [`Obs`] is a cheaply cloneable handle threaded through the pipeline.
//!   The default ([`Obs::noop`]) records nothing and costs one branch per
//!   call site, so library callers that never ask for a report pay nothing.
//! - [`Obs::span`] opens a monotonic RAII timer. Spans are nestable (guards
//!   may be opened inside other guards, on any thread) and worker-aware:
//!   each record notes the [`pm_runtime`] worker id it ran on, so a report
//!   shows how many workers a stage actually fanned out over.
//! - [`Obs::incr`] / [`Obs::gauge`] maintain named counters and gauges.
//!   Counters are monotone sums, so their totals are independent of worker
//!   scheduling — observability never breaks the §9 determinism contract.
//! - [`Obs::report`] snapshots everything into a [`RunReport`] that
//!   serializes to stable JSON (keys sorted, schema versioned) or a
//!   human-readable text table.
//!
//! # Naming scheme
//!
//! Dotted lowercase paths, `<stage>.<what>`: span names use the pipeline
//! stage as the first segment (`construct.clustering`, `recognize.vote`,
//! `extract.prefixspan`); counter names use the owning stage plus a plural
//! noun (`extract.fine_patterns`, `cluster.optics_runs`). Two prefixes are
//! special-cased by [`RunReport`]: counters under `degradation.` and
//! `quarantine.` are lifted into their own report sections so a run's
//! tolerated-trouble tallies are visible at a glance.
//!
//! The online service (pm-serve + pm-stream) pre-registers its counter
//! schema at zero on startup, so a fresh server's report always carries
//! the same names:
//!
//! - `serve.requests.<endpoint>` / `serve.errors.<endpoint>` per routed
//!   endpoint, `serve.shed` for queue-full 503s, and `serve.swap_epoch`
//!   counting snapshot hot-swaps (paired with the `serve.epoch` gauge);
//! - `stream.fixes_accepted`, `stream.stays_emitted`,
//!   `stream.transitions_recorded`, `stream.transitions_late`, and
//!   `stream.users_evicted` for the ingestion engine, with the live gauges
//!   `stream.users_active` / `stream.buffered_fixes`;
//! - `quarantine.stream_out_of_order` and
//!   `degradation.stream_dropped_fixes` ride the special-cased prefixes, so
//!   streaming trouble lands in the same report sections as batch trouble.
//!
//! # Determinism
//!
//! Observation is strictly one-way: nothing read from an [`Obs`] feeds back
//! into pipeline decisions, so results are byte-identical whether a run is
//! observed or not (`tests/parallel_parity.rs` proves this end to end).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

pub mod json;
pub mod report;

pub use report::{RunReport, StageReport};

/// One finished span: a named, timed section of work.
#[derive(Debug, Clone)]
struct SpanRecord {
    name: &'static str,
    nanos: u128,
    /// `pm_runtime` worker id the span closed on (`None` = the calling
    /// thread outside any parallel region).
    worker: Option<usize>,
}

#[derive(Debug)]
struct Inner {
    started: Instant,
    threads: AtomicUsize,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

/// Recovers the data from a poisoned lock: observability must never turn a
/// worker panic elsewhere into a second panic here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Handle to a run's observability state.
///
/// Clones share the same underlying recorder, so the handle can be passed by
/// value into worker closures. The [`Default`]/[`Obs::noop`] form holds no
/// state at all: every method short-circuits on one `Option` check.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl Obs {
    /// A recording handle. Everything observed through it (and its clones)
    /// lands in one shared state, snapshotted by [`Obs::report`].
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                started: Instant::now(),
                threads: AtomicUsize::new(1),
                spans: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The zero-cost default: records nothing.
    pub fn noop() -> Self {
        Obs::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Declares the resolved worker-thread count of the run being observed
    /// (informational; spans additionally record which worker they ran on).
    pub fn set_threads(&self, threads: usize) {
        if let Some(inner) = &self.inner {
            inner.threads.store(threads.max(1), Ordering::Relaxed);
        }
    }

    /// Opens a named span; the time from this call until the guard drops is
    /// recorded. Guards may nest freely and may be opened on worker threads.
    #[must_use = "a span measures until its guard drops; binding it to _ closes it immediately"]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            state: self
                .inner
                .as_deref()
                .map(|inner| (inner, name, Instant::now())),
        }
    }

    /// Adds `by` to the named counter, creating it at zero first. `by = 0`
    /// registers the counter so it appears in the report even when nothing
    /// was ever counted (useful for stable schemas).
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut counters = lock(&inner.counters);
            match counters.get_mut(name) {
                Some(v) => *v = v.saturating_add(by),
                None => {
                    counters.insert(name.to_string(), by);
                }
            }
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.gauges).insert(name.to_string(), value);
        }
    }

    /// Reads one counter back (0 when absent or when the handle is a no-op).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_deref()
            .and_then(|inner| lock(&inner.counters).get(name).copied())
            .unwrap_or(0)
    }

    /// Snapshots everything recorded so far into a [`RunReport`]. A no-op
    /// handle yields an empty (but well-formed) report.
    pub fn report(&self) -> RunReport {
        let Some(inner) = self.inner.as_deref() else {
            return RunReport::empty();
        };
        let wall_ms = inner.started.elapsed().as_nanos() as f64 / 1e6;
        let threads = inner.threads.load(Ordering::Relaxed);
        let spans = lock(&inner.spans).clone();
        let counters = lock(&inner.counters).clone();
        let gauges = lock(&inner.gauges).clone();
        RunReport::assemble(wall_ms, threads, &spans, counters, gauges)
    }
}

/// RAII guard returned by [`Obs::span`]; records the elapsed time on drop.
#[derive(Debug)]
pub struct Span<'a> {
    state: Option<(&'a Inner, &'static str, Instant)>,
}

impl Span<'_> {
    /// Closes the span now instead of at end of scope.
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.state.take() {
            let nanos = start.elapsed().as_nanos();
            lock(&inner.spans).push(SpanRecord {
                name,
                nanos,
                worker: pm_runtime::current_worker(),
            });
        }
    }
}

impl RunReport {
    pub(crate) fn assemble(
        wall_ms: f64,
        threads: usize,
        spans: &[SpanRecord],
        counters: BTreeMap<String, u64>,
        gauges: BTreeMap<String, f64>,
    ) -> RunReport {
        // Aggregate spans by name; BTreeMap keeps the stage list sorted, so
        // the serialized report is stable run to run.
        #[derive(Default)]
        struct Agg {
            calls: u64,
            total: u128,
            min: u128,
            max: u128,
            workers: Vec<Option<usize>>,
        }
        let mut by_name: BTreeMap<&'static str, Agg> = BTreeMap::new();
        for s in spans {
            let agg = by_name.entry(s.name).or_default();
            if agg.calls == 0 {
                agg.min = s.nanos;
            }
            agg.calls += 1;
            agg.total += s.nanos;
            agg.min = agg.min.min(s.nanos);
            agg.max = agg.max.max(s.nanos);
            if !agg.workers.contains(&s.worker) {
                agg.workers.push(s.worker);
            }
        }
        let stages = by_name
            .into_iter()
            .map(|(name, a)| StageReport {
                name: name.to_string(),
                calls: a.calls,
                total_ms: a.total as f64 / 1e6,
                min_ms: a.min as f64 / 1e6,
                max_ms: a.max as f64 / 1e6,
                workers: a.workers.len() as u64,
            })
            .collect();

        // Lift the special-cased counter prefixes into their own sections.
        let mut plain = BTreeMap::new();
        let mut degradations = BTreeMap::new();
        let mut quarantine = BTreeMap::new();
        for (k, v) in counters {
            if let Some(rest) = k.strip_prefix("degradation.") {
                degradations.insert(rest.to_string(), v);
            } else if let Some(rest) = k.strip_prefix("quarantine.") {
                quarantine.insert(rest.to_string(), v);
            } else {
                plain.insert(k, v);
            }
        }

        RunReport {
            wall_ms,
            threads: threads as u64,
            stages,
            counters: plain,
            degradations,
            quarantine,
            gauges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing() {
        let obs = Obs::noop();
        assert!(!obs.is_enabled());
        {
            let _s = obs.span("construct.clustering");
        }
        obs.incr("x.count", 5);
        obs.gauge("x.gauge", 1.5);
        obs.set_threads(8);
        let r = obs.report();
        assert!(r.stages.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.gauges.is_empty());
        assert_eq!(obs.counter("x.count"), 0);
    }

    #[test]
    fn spans_aggregate_by_name() {
        let obs = Obs::enabled();
        for _ in 0..3 {
            let _s = obs.span("stage.a");
        }
        {
            let _outer = obs.span("stage.b");
            let _inner = obs.span("stage.a"); // nesting is fine
        }
        let r = obs.report();
        assert_eq!(r.stages.len(), 2);
        let a = r.stages.iter().find(|s| s.name == "stage.a").unwrap();
        assert_eq!(a.calls, 4);
        assert!(a.total_ms >= a.max_ms && a.max_ms >= a.min_ms);
        let b = r.stages.iter().find(|s| s.name == "stage.b").unwrap();
        assert_eq!(b.calls, 1);
    }

    #[test]
    fn counters_sum_and_register_at_zero() {
        let obs = Obs::enabled();
        obs.incr("extract.fine_patterns", 0); // register
        obs.incr("recognize.votes_cast", 3);
        obs.incr("recognize.votes_cast", 4);
        assert_eq!(obs.counter("recognize.votes_cast"), 7);
        let r = obs.report();
        assert_eq!(r.counters.get("extract.fine_patterns"), Some(&0));
        assert_eq!(r.counters.get("recognize.votes_cast"), Some(&7));
    }

    #[test]
    fn counter_totals_are_schedule_independent() {
        // Increment from parallel workers: the sum is the same no matter how
        // the work was scheduled — the property that keeps observed runs
        // bit-identical to unobserved ones.
        let items: Vec<u64> = (0..257).collect();
        let mut totals = Vec::new();
        for threads in [1, 4] {
            let obs = Obs::enabled();
            pm_runtime::par_map(&items, threads, |&x| obs.incr("work.items", x));
            totals.push(obs.counter("work.items"));
        }
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[0], (0..257).sum::<u64>());
    }

    #[test]
    fn spans_on_workers_record_worker_ids() {
        let obs = Obs::enabled();
        let items: Vec<usize> = (0..64).collect();
        pm_runtime::par_map(&items, 4, |_| {
            let _s = obs.span("worker.stage");
        });
        let r = obs.report();
        let s = r.stages.iter().find(|s| s.name == "worker.stage").unwrap();
        assert_eq!(s.calls, 64);
        assert!(
            s.workers >= 2,
            "expected >= 2 distinct workers, got {}",
            s.workers
        );
    }

    #[test]
    fn degradation_and_quarantine_prefixes_are_sectioned() {
        let obs = Obs::enabled();
        obs.incr("degradation.dropped_gps_fixes", 2);
        obs.incr("quarantine.journeys_dropped", 5);
        obs.incr("io.lines_read", 100);
        let r = obs.report();
        assert_eq!(r.degradations.get("dropped_gps_fixes"), Some(&2));
        assert_eq!(r.quarantine.get("journeys_dropped"), Some(&5));
        assert_eq!(r.counters.get("io.lines_read"), Some(&100));
        assert!(!r.counters.contains_key("degradation.dropped_gps_fixes"));
    }

    #[test]
    fn serve_stream_counter_schema_is_stable() {
        // The canonical names the online service pre-registers at zero (see
        // the naming scheme above). Registration alone must make every name
        // land in its proper `pm-obs/1` section — the contract pm-serve's
        // `/v1/stats` endpoint and the run-report consumers rely on.
        let obs = Obs::enabled();
        for name in [
            "stream.fixes_accepted",
            "stream.stays_emitted",
            "stream.transitions_recorded",
            "stream.transitions_late",
            "stream.users_evicted",
            "quarantine.stream_out_of_order",
            "degradation.stream_dropped_fixes",
            "serve.swap_epoch",
            "cohort.cohorts_served",
            "cohort.patterns_served",
            "cohort.similar_served",
            "cohort.suppressed_aggregates",
            "cohort.unknown_user",
            "cohort.missing_section",
        ] {
            obs.incr(name, 0);
        }
        obs.gauge("serve.epoch", 0.0);
        obs.gauge("stream.users_active", 0.0);
        obs.gauge("stream.buffered_fixes", 0.0);
        let r = obs.report();
        assert_eq!(r.counters.get("stream.fixes_accepted"), Some(&0));
        assert_eq!(r.counters.get("serve.swap_epoch"), Some(&0));
        assert_eq!(r.counters.get("cohort.suppressed_aggregates"), Some(&0));
        assert_eq!(r.quarantine.get("stream_out_of_order"), Some(&0));
        assert_eq!(r.degradations.get("stream_dropped_fixes"), Some(&0));
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"pm-obs/1\""));
        for name in [
            "stream.fixes_accepted",
            "stream.transitions_late",
            "serve.swap_epoch",
            "stream_out_of_order",
            "stream_dropped_fixes",
            "serve.epoch",
            "stream.users_active",
            "stream.buffered_fixes",
            "cohort.cohorts_served",
            "cohort.patterns_served",
            "cohort.similar_served",
            "cohort.suppressed_aggregates",
            "cohort.unknown_user",
            "cohort.missing_section",
        ] {
            assert!(json.contains(name), "{name} missing from report JSON");
        }
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.incr("shared.count", 1);
        obs.incr("shared.count", 1);
        assert_eq!(obs.counter("shared.count"), 2);
    }

    #[test]
    fn threads_and_gauges_surface_in_report() {
        let obs = Obs::enabled();
        obs.set_threads(4);
        obs.gauge("input.pois", 1500.0);
        let r = obs.report();
        assert_eq!(r.threads, 4);
        assert_eq!(r.gauges.get("input.pois"), Some(&1500.0));
        assert!(r.wall_ms >= 0.0);
    }
}
