//! Property-based tests: PrefixSpan must agree with a brute-force frequent
//! subsequence enumerator on small alphabets.

use pm_seqmine::{prefixspan, PrefixSpanParams};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Brute-force enumeration of frequent subsequences up to `max_len`.
fn brute_force(
    db: &[Vec<u32>],
    min_support: usize,
    min_len: usize,
    max_len: usize,
) -> BTreeMap<Vec<u32>, usize> {
    // Grow candidates level-wise from the alphabet.
    let mut alphabet: Vec<u32> = db.iter().flatten().copied().collect();
    alphabet.sort_unstable();
    alphabet.dedup();

    let contains = |seq: &[u32], pat: &[u32]| -> bool {
        let mut it = seq.iter();
        pat.iter().all(|p| it.any(|x| x == p))
    };
    let support = |pat: &[u32]| db.iter().filter(|s| contains(s, pat)).count();

    let mut out = BTreeMap::new();
    let mut frontier: Vec<Vec<u32>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for pat in &frontier {
            for &a in &alphabet {
                let mut cand = pat.clone();
                cand.push(a);
                let sup = support(&cand);
                if sup >= min_support {
                    if cand.len() >= min_len {
                        out.insert(cand.clone(), sup);
                    }
                    next.push(cand);
                }
            }
        }
        frontier = next;
    }
    out
}

fn small_db() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..4, 0..6), 0..8)
}

proptest! {
    #[test]
    fn matches_brute_force(db in small_db(), min_support in 1usize..4) {
        let params = PrefixSpanParams::new(min_support, 1, 4);
        let mined = prefixspan(&db, params);
        let expect = brute_force(&db, min_support, 1, 4);

        let got: BTreeMap<Vec<u32>, usize> = mined
            .iter()
            .map(|p| (p.items.clone(), p.support()))
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn occurrences_are_valid_embeddings(db in small_db()) {
        let mined = prefixspan(&db, PrefixSpanParams::new(1, 1, 4));
        for p in &mined {
            prop_assert_eq!(p.support(), p.occurrences.len());
            for occ in &p.occurrences {
                prop_assert_eq!(occ.positions.len(), p.items.len());
                // Positions strictly increasing and matching the items.
                for (k, &pos) in occ.positions.iter().enumerate() {
                    prop_assert_eq!(db[occ.seq][pos], p.items[k]);
                    if k > 0 {
                        prop_assert!(occ.positions[k - 1] < pos);
                    }
                }
            }
            // Supporting sequences are distinct.
            let mut seqs: Vec<usize> = p.occurrences.iter().map(|o| o.seq).collect();
            seqs.sort_unstable();
            seqs.dedup();
            prop_assert_eq!(seqs.len(), p.occurrences.len());
        }
    }

    #[test]
    fn antimonotone_support(db in small_db()) {
        let mined = prefixspan(&db, PrefixSpanParams::new(1, 1, 4));
        let lookup: BTreeMap<&[u32], usize> =
            mined.iter().map(|p| (p.items.as_slice(), p.support())).collect();
        for p in &mined {
            if p.items.len() >= 2 {
                let parent = &p.items[..p.items.len() - 1];
                prop_assert!(lookup[parent] >= p.support());
            }
        }
    }
}
