//! PrefixSpan: mining sequential patterns by prefix-projected growth.
//!
//! Sequences are slices of `u32` item ids (semantic category ids in the
//! mobility pipeline). A pattern is frequent when at least `min_support`
//! distinct sequences contain it as a (not necessarily contiguous)
//! subsequence. The classic optimization applies: rather than re-scanning
//! the database, each prefix keeps a *projected database* of (sequence id,
//! suffix offset) pairs, and frequent items local to the projection extend
//! the prefix recursively.

use std::collections::HashMap;

/// PrefixSpan parameters.
#[derive(Clone, Copy, Debug)]
pub struct PrefixSpanParams {
    /// Minimum number of distinct supporting sequences.
    pub min_support: usize,
    /// Minimum pattern length to report (>= 1).
    pub min_len: usize,
    /// Maximum pattern length to grow to (bounds the search).
    pub max_len: usize,
}

impl PrefixSpanParams {
    /// Creates a parameter set reporting patterns of length
    /// `min_len..=max_len` with at least `min_support` supporters.
    pub fn new(min_support: usize, min_len: usize, max_len: usize) -> Self {
        assert!(min_support >= 1, "min_support must be at least 1");
        assert!(min_len >= 1, "min_len must be at least 1");
        assert!(max_len >= min_len, "max_len must be >= min_len");
        Self {
            min_support,
            min_len,
            max_len,
        }
    }
}

/// One supporting sequence of a pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Occurrence {
    /// Index of the supporting sequence in the input database.
    pub seq: usize,
    /// Leftmost embedding: for each pattern item, the position in the
    /// sequence where it matched (strictly increasing).
    pub positions: Vec<usize>,
}

/// A frequent sequential pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequencePattern {
    /// The item sequence of the pattern.
    pub items: Vec<u32>,
    /// Supporting sequences with their leftmost embeddings. `support` is
    /// `occurrences.len()`.
    pub occurrences: Vec<Occurrence>,
}

impl SequencePattern {
    /// Number of distinct sequences supporting the pattern.
    pub fn support(&self) -> usize {
        self.occurrences.len()
    }

    /// Pattern length in items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pattern is empty (never produced by the miner).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Mines all frequent sequential patterns of `db` under `params`.
///
/// Output patterns are sorted by descending support, ties broken by
/// lexicographic item order, so results are deterministic.
pub fn prefixspan(db: &[Vec<u32>], params: PrefixSpanParams) -> Vec<SequencePattern> {
    // Initial projection: every sequence from offset 0.
    let projection: Vec<(usize, usize)> = (0..db.len()).map(|i| (i, 0)).collect();
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    grow(db, &params, &mut prefix, &projection, &mut out);

    // Attach leftmost embeddings and order deterministically.
    let mut patterns: Vec<SequencePattern> = out
        .into_iter()
        .map(|(items, supporters)| {
            let occurrences = supporters
                .into_iter()
                .map(|seq| Occurrence {
                    positions: leftmost_embedding(&db[seq], &items)
                        .expect("supporter must embed the pattern"),
                    seq,
                })
                .collect();
            SequencePattern { items, occurrences }
        })
        .collect();
    patterns.sort_by(|a, b| {
        b.support()
            .cmp(&a.support())
            .then_with(|| a.items.cmp(&b.items))
    });
    patterns
}

/// Recursive prefix growth. `projection` holds (sequence id, offset of the
/// unmatched suffix) for every sequence containing the current prefix.
fn grow(
    db: &[Vec<u32>],
    params: &PrefixSpanParams,
    prefix: &mut Vec<u32>,
    projection: &[(usize, usize)],
    out: &mut Vec<(Vec<u32>, Vec<usize>)>,
) {
    if prefix.len() >= params.max_len {
        return;
    }
    // Count, for each item, the number of distinct sequences whose suffix
    // contains it.
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &(seq, off) in projection {
        let mut seen = Vec::new();
        for &item in &db[seq][off..] {
            if !seen.contains(&item) {
                seen.push(item);
                *counts.entry(item).or_insert(0) += 1;
            }
        }
    }
    let mut frequent: Vec<u32> = counts
        .iter()
        .filter(|&(_, &c)| c >= params.min_support)
        .map(|(&item, _)| item)
        .collect();
    frequent.sort_unstable();

    for item in frequent {
        // Project: for each supporting sequence, advance past the first
        // occurrence of `item` in its suffix.
        let mut next_projection = Vec::new();
        let mut supporters = Vec::new();
        for &(seq, off) in projection {
            if let Some(pos) = db[seq][off..].iter().position(|&x| x == item) {
                next_projection.push((seq, off + pos + 1));
                supporters.push(seq);
            }
        }
        prefix.push(item);
        if prefix.len() >= params.min_len {
            out.push((prefix.clone(), supporters));
        }
        grow(db, params, prefix, &next_projection, out);
        prefix.pop();
    }
}

/// Computes the leftmost embedding of `pattern` in `seq` by greedy matching,
/// or `None` when `seq` does not contain `pattern` as a subsequence.
pub fn leftmost_embedding(seq: &[u32], pattern: &[u32]) -> Option<Vec<usize>> {
    let mut positions = Vec::with_capacity(pattern.len());
    let mut from = 0usize;
    for &want in pattern {
        let pos = seq[from..].iter().position(|&x| x == want)? + from;
        positions.push(pos);
        from = pos + 1;
    }
    Some(positions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db1() -> Vec<Vec<u32>> {
        vec![vec![1, 2, 3], vec![1, 3], vec![2, 3], vec![1, 2]]
    }

    fn find<'a>(ps: &'a [SequencePattern], items: &[u32]) -> Option<&'a SequencePattern> {
        ps.iter().find(|p| p.items == items)
    }

    #[test]
    fn single_item_supports() {
        let ps = prefixspan(&db1(), PrefixSpanParams::new(2, 1, 3));
        assert_eq!(find(&ps, &[1]).unwrap().support(), 3);
        assert_eq!(find(&ps, &[2]).unwrap().support(), 3);
        assert_eq!(find(&ps, &[3]).unwrap().support(), 3);
    }

    #[test]
    fn pair_patterns() {
        let ps = prefixspan(&db1(), PrefixSpanParams::new(2, 2, 3));
        assert_eq!(find(&ps, &[1, 2]).unwrap().support(), 2);
        assert_eq!(find(&ps, &[1, 3]).unwrap().support(), 2);
        assert_eq!(find(&ps, &[2, 3]).unwrap().support(), 2);
        // [3, x] never frequent; [1,2,3] support 1 < 2.
        assert!(find(&ps, &[1, 2, 3]).is_none());
        assert!(find(&ps, &[3, 1]).is_none());
    }

    #[test]
    fn min_len_filters_short_patterns() {
        let ps = prefixspan(&db1(), PrefixSpanParams::new(2, 2, 3));
        assert!(ps.iter().all(|p| p.len() >= 2));
    }

    #[test]
    fn max_len_bounds_growth() {
        let db = vec![vec![1, 2, 3, 4], vec![1, 2, 3, 4]];
        let ps = prefixspan(&db, PrefixSpanParams::new(2, 1, 2));
        assert!(ps.iter().all(|p| p.len() <= 2));
        assert!(find(&ps, &[1, 2]).is_some());
    }

    #[test]
    fn subsequence_matching_is_noncontiguous() {
        let db = vec![vec![1, 9, 9, 2], vec![1, 2]];
        let ps = prefixspan(&db, PrefixSpanParams::new(2, 2, 2));
        assert_eq!(find(&ps, &[1, 2]).unwrap().support(), 2);
    }

    #[test]
    fn repeated_items_count_once_per_sequence() {
        let db = vec![vec![5, 5, 5], vec![5]];
        let ps = prefixspan(&db, PrefixSpanParams::new(2, 1, 3));
        assert_eq!(find(&ps, &[5]).unwrap().support(), 2);
        // [5,5] supported only by the first sequence.
        assert!(find(&ps, &[5, 5]).is_none());
        let ps1 = prefixspan(&db, PrefixSpanParams::new(1, 1, 3));
        assert_eq!(find(&ps1, &[5, 5]).unwrap().support(), 1);
        assert_eq!(find(&ps1, &[5, 5, 5]).unwrap().support(), 1);
    }

    #[test]
    fn occurrences_record_leftmost_embeddings() {
        let db = vec![vec![7, 1, 7, 2, 2]];
        let ps = prefixspan(&db, PrefixSpanParams::new(1, 2, 2));
        let p = find(&ps, &[7, 2]).unwrap();
        assert_eq!(p.occurrences.len(), 1);
        assert_eq!(p.occurrences[0].seq, 0);
        assert_eq!(p.occurrences[0].positions, vec![0, 3]);
    }

    #[test]
    fn empty_database() {
        let ps = prefixspan(&[], PrefixSpanParams::new(1, 1, 3));
        assert!(ps.is_empty());
    }

    #[test]
    fn empty_sequences_support_nothing() {
        let db = vec![Vec::new(), vec![1]];
        let ps = prefixspan(&db, PrefixSpanParams::new(1, 1, 2));
        assert_eq!(find(&ps, &[1]).unwrap().support(), 1);
    }

    #[test]
    fn support_is_antimonotone() {
        let db = vec![
            vec![1, 2, 3, 4],
            vec![2, 3, 4],
            vec![1, 3, 4],
            vec![4, 3, 2, 1],
        ];
        let ps = prefixspan(&db, PrefixSpanParams::new(1, 1, 4));
        for p in &ps {
            if p.len() < 2 {
                continue;
            }
            let parent = &p.items[..p.len() - 1];
            let parent_support = find(&ps, parent).unwrap().support();
            assert!(parent_support >= p.support(), "{:?}", p.items);
        }
    }

    #[test]
    fn deterministic_ordering() {
        let a = prefixspan(&db1(), PrefixSpanParams::new(1, 1, 3));
        let b = prefixspan(&db1(), PrefixSpanParams::new(1, 1, 3));
        assert_eq!(a, b);
        // Descending support.
        for w in a.windows(2) {
            assert!(w[0].support() >= w[1].support());
        }
    }

    #[test]
    fn leftmost_embedding_basics() {
        assert_eq!(leftmost_embedding(&[1, 2, 3], &[1, 3]), Some(vec![0, 2]));
        assert_eq!(leftmost_embedding(&[1, 2, 3], &[3, 1]), None);
        assert_eq!(leftmost_embedding(&[1, 2], &[]), Some(vec![]));
        assert_eq!(leftmost_embedding(&[], &[1]), None);
    }
}
