//! Post-filters over mined pattern sets: *closed* and *maximal* patterns.
//!
//! PrefixSpan enumerates every frequent subsequence, which is redundant for
//! reporting: `Residence -> Business` is implied by `Residence -> Business
//! -> Restaurant` whenever both have the same supporters. The closed set
//! (no super-pattern with equal support) is lossless; the maximal set (no
//! frequent super-pattern at all) is the tersest summary.

use crate::prefixspan::{leftmost_embedding, SequencePattern};

/// Whether `small` is a (not necessarily contiguous) subsequence of `big`.
fn is_subsequence(small: &[u32], big: &[u32]) -> bool {
    small.len() < big.len() && leftmost_embedding(big, small).is_some()
}

/// Keeps the *closed* patterns: those with no proper super-pattern of equal
/// support. Input order is preserved.
pub fn closed_patterns(patterns: &[SequencePattern]) -> Vec<SequencePattern> {
    patterns
        .iter()
        .filter(|p| {
            !patterns
                .iter()
                .any(|q| q.support() == p.support() && is_subsequence(&p.items, &q.items))
        })
        .cloned()
        .collect()
}

/// Keeps the *maximal* patterns: those with no frequent proper
/// super-pattern in the set. Input order is preserved.
pub fn maximal_patterns(patterns: &[SequencePattern]) -> Vec<SequencePattern> {
    patterns
        .iter()
        .filter(|p| !patterns.iter().any(|q| is_subsequence(&p.items, &q.items)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefixspan::{prefixspan, PrefixSpanParams};

    fn mine(db: &[Vec<u32>], min_support: usize) -> Vec<SequencePattern> {
        prefixspan(db, PrefixSpanParams::new(min_support, 1, 5))
    }

    #[test]
    fn closed_drops_equal_support_prefixes() {
        // Every sequence is [1, 2]: [1], [2] and [1,2] all have support 3;
        // only [1,2] is closed.
        let db = vec![vec![1, 2], vec![1, 2], vec![1, 2]];
        let all = mine(&db, 2);
        assert_eq!(all.len(), 3);
        let closed = closed_patterns(&all);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].items, vec![1, 2]);
    }

    #[test]
    fn closed_keeps_higher_support_sub_patterns() {
        // [1] appears in 4 sequences but [1,2] only in 2: both are closed.
        let db = vec![vec![1, 2], vec![1, 2], vec![1], vec![1]];
        let closed = closed_patterns(&mine(&db, 2));
        let items: Vec<&[u32]> = closed.iter().map(|p| p.items.as_slice()).collect();
        assert!(items.contains(&&[1u32][..]));
        assert!(items.contains(&&[1u32, 2][..]));
        assert!(
            !items.contains(&&[2u32][..]),
            "[2] has the same support as [1,2]"
        );
    }

    #[test]
    fn maximal_is_subset_of_closed() {
        let db = vec![vec![1, 2, 3], vec![1, 2, 3], vec![1, 2], vec![3, 1]];
        let all = mine(&db, 2);
        let closed = closed_patterns(&all);
        let maximal = maximal_patterns(&all);
        assert!(maximal.len() <= closed.len());
        // Every maximal pattern is closed.
        for m in &maximal {
            assert!(closed.iter().any(|c| c.items == m.items));
        }
        // The longest frequent pattern survives both.
        assert!(maximal.iter().any(|p| p.items == vec![1, 2, 3]));
        // Its sub-pattern [1,2] (support 3 > 2) is closed but not maximal.
        assert!(closed.iter().any(|p| p.items == vec![1, 2]));
        assert!(!maximal.iter().any(|p| p.items == vec![1, 2]));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(closed_patterns(&[]).is_empty());
        assert!(maximal_patterns(&[]).is_empty());
        let db = vec![vec![7]];
        let all = mine(&db, 1);
        assert_eq!(closed_patterns(&all).len(), 1);
        assert_eq!(maximal_patterns(&all).len(), 1);
    }
}
