//! Sequential pattern mining substrate: **PrefixSpan** (Pei, Han et al.,
//! ICDE 2001 — the paper's ref \[24\]).
//!
//! The Pattern Extractor of Pervasive Miner (and both competitor pipelines,
//! Splitter and SDBSCAN) first mine *coarse semantic patterns*: frequent
//! sequences of semantic categories across the semantic-trajectory database.
//! This crate implements PrefixSpan's prefix-projected growth plus the
//! occurrence bookkeeping Algorithm 4 needs (which trajectories support a
//! pattern, and at which stay-point positions).

pub mod filter;
pub mod prefixspan;

pub use filter::{closed_patterns, maximal_patterns};
pub use prefixspan::{prefixspan, Occurrence, PrefixSpanParams, SequencePattern};
