//! Property-based tests for the synthetic substrate: structural guarantees
//! must hold for every seed and scale, not just the tested ones.

use pm_core::types::{Category, DAY_SECS};
use pm_synth::{generate_checkins, CityConfig, CityModel, SharingProfile, TaxiCorpus};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = CityConfig> {
    (0u64..1_000, 12usize..40, 100usize..400, 1u32..5).prop_map(
        |(seed, districts, passengers, days)| CityConfig {
            seed,
            extent_m: 6_000.0,
            n_districts: districts,
            n_towers: 2,
            n_pois: 800,
            n_passengers: passengers,
            carded_fraction: 0.2,
            n_days: days,
            gps_noise_m: 15.0,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn city_structure_holds_for_every_seed(cfg in config()) {
        let city = CityModel::generate(&cfg);
        prop_assert!(!city.cbds().is_empty());
        prop_assert!(!city.districts_of(Category::Residence).is_empty());
        prop_assert_eq!(city.districts[city.airport].category, Category::TrafficStation);
        prop_assert!(city.hospitals.len() >= 2);
        for d in &city.districts {
            prop_assert!(!d.venues.is_empty());
            prop_assert!(d.radius > 0.0);
        }
    }

    #[test]
    fn corpus_invariants(cfg in config()) {
        let city = CityModel::generate(&cfg);
        let corpus = TaxiCorpus::generate(&city);
        for j in &corpus.journeys {
            prop_assert!(j.dropoff.time > j.pickup.time);
            prop_assert!(j.dropoff.time - j.pickup.time < 3 * 3600,
                "implausible trip duration");
        }
        // Linking preserves stays and truth alignment.
        let (trajs, truth) = corpus.trajectories_with_truth();
        prop_assert_eq!(trajs.len(), truth.len());
        let mut total_stays = 0usize;
        for (t, c) in trajs.iter().zip(&truth) {
            prop_assert_eq!(t.len(), c.len());
            prop_assert!(t.stays.windows(2).all(|w| w[0].time <= w[1].time));
            total_stays += t.len();
        }
        // Every journey contributes its drop-off exactly once, plus one
        // pick-up per trajectory.
        prop_assert_eq!(total_stays, corpus.journeys.len() + trajs.len());
    }

    #[test]
    fn checkins_never_exceed_journeys(cfg in config(), seed in 0u64..50) {
        let city = CityModel::generate(&cfg);
        let corpus = TaxiCorpus::generate(&city);
        for profile in [SharingProfile::new_york(), SharingProfile::tokyo()] {
            let checkins = generate_checkins(&corpus, &profile, seed);
            prop_assert!(checkins.len() <= corpus.journeys.len());
        }
    }

    #[test]
    fn weekday_traffic_dominates(cfg in config()) {
        prop_assume!(cfg.n_days >= 7 || cfg.n_days <= 5);
        let city = CityModel::generate(&cfg);
        let corpus = TaxiCorpus::generate(&city);
        prop_assume!(corpus.journeys.len() > 100);
        let mut weekday = 0usize;
        let mut weekend = 0usize;
        let mut wd_days = 0u32;
        let mut we_days = 0u32;
        for d in 0..cfg.n_days {
            if d % 7 >= 5 { we_days += 1 } else { wd_days += 1 }
        }
        for j in &corpus.journeys {
            let day = j.pickup.time.div_euclid(DAY_SECS) % 7;
            if day >= 5 { weekend += 1 } else { weekday += 1 }
        }
        if wd_days > 0 && we_days > 0 {
            let wd_rate = weekday as f64 / wd_days as f64;
            let we_rate = weekend as f64 / we_days as f64;
            prop_assert!(wd_rate > we_rate, "weekday {wd_rate} <= weekend {we_rate}");
        }
    }
}
