//! Raw GPS track generation: full fix-by-fix trajectories with dwell
//! segments.
//!
//! The taxi corpus short-circuits stay-point detection (pick-up/drop-off
//! records *are* the stay points, paper §5). This module generates what the
//! general pipeline of §4.2 consumes instead: continuous GPS tracks of
//! probe commuters — drive segments between venues along a bent path,
//! dwell segments at the venues — so Definition 5's detector has real work
//! to do end-to-end.

use crate::city::CityModel;
use pm_core::types::{Category, GpsPoint, GpsTrajectory, Timestamp, DAY_SECS};
use pm_geo::{polyline, LocalPoint};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the probe-track generator.
#[derive(Clone, Copy, Debug)]
pub struct GpsConfig {
    /// Number of probe commuters.
    pub n_probes: usize,
    /// Days to simulate (one trajectory per probe per day).
    pub n_days: u32,
    /// Seconds between fixes while driving.
    pub drive_sample_s: i64,
    /// Seconds between fixes while dwelling.
    pub dwell_sample_s: i64,
    /// GPS noise sigma in meters.
    pub noise_m: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GpsConfig {
    fn default() -> Self {
        Self {
            n_probes: 50,
            n_days: 1,
            drive_sample_s: 30,
            dwell_sample_s: 120,
            noise_m: 12.0,
            seed: 0,
        }
    }
}

/// One generated probe-day: the raw track plus the ground-truth visits
/// (venue position, category, arrival, departure) the track encodes.
#[derive(Debug, Clone)]
pub struct ProbeTrack {
    /// The raw GPS trajectory.
    pub track: GpsTrajectory,
    /// Ground-truth visits in order: `(venue, category, arrive, depart)`.
    pub visits: Vec<(LocalPoint, Category, Timestamp, Timestamp)>,
}

/// Driving speed of probes, in m/s.
const PROBE_SPEED_MPS: f64 = 8.0;

/// Generates probe tracks over the city: each probe commutes
/// home -> work -> home with realistic dwells; some add an evening errand.
pub fn generate_probe_tracks(city: &CityModel, config: &GpsConfig) -> Vec<ProbeTrack> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x69F5);
    let residences = city.districts_of(Category::Residence);
    let cbds = city.cbds();
    let shops = city.districts_of(Category::Shop);

    let mut out = Vec::with_capacity(config.n_probes * config.n_days as usize);
    for _ in 0..config.n_probes {
        let home_d = residences[rng.gen_range(0..residences.len())];
        let work_d = cbds[rng.gen_range(0..cbds.len())];
        let home = city.districts[home_d].venues[0];
        let work = city.districts[work_d].venues[0];
        let home_cat = city.districts[home_d].category;
        let work_cat = city.districts[work_d].category;

        for day in 0..config.n_days {
            let day_start = day as Timestamp * DAY_SECS;
            // Visit plan: home until ~08:00, work until ~18:00, optionally a
            // shop stop, then home.
            let leave_home = day_start + (7 * 3600 + rng.gen_range(0..5_400)) as Timestamp;
            let leave_work = day_start + (17 * 3600 + rng.gen_range(0..7_200)) as Timestamp;
            let mut plan: Vec<(LocalPoint, Category, Timestamp)> =
                vec![(home, home_cat, leave_home), (work, work_cat, leave_work)];
            if !shops.is_empty() && rng.gen_bool(0.3) {
                let shop_d = shops[rng.gen_range(0..shops.len())];
                plan.push((
                    city.districts[shop_d].venues[0],
                    city.districts[shop_d].category,
                    leave_work + rng.gen_range(2_400..4_800),
                ));
            }
            plan.push((home, home_cat, day_start + DAY_SECS - 1));

            out.push(build_track(&plan, config, &mut rng, day_start));
        }
    }
    out
}

/// Builds one probe-day track from a visit plan of `(venue, category,
/// departure time)` entries; the first entry's dwell starts at `t0 + 06:00`.
fn build_track(
    plan: &[(LocalPoint, Category, Timestamp)],
    config: &GpsConfig,
    rng: &mut ChaCha8Rng,
    day_start: Timestamp,
) -> ProbeTrack {
    let mut fixes: Vec<GpsPoint> = Vec::new();
    let mut visits = Vec::new();
    let mut now = day_start + 6 * 3600;

    for (i, &(venue, category, depart)) in plan.iter().enumerate() {
        // Dwell at the venue until departure.
        let arrive = now;
        let depart = depart.max(arrive + config.dwell_sample_s);
        let mut t = arrive;
        while t < depart {
            fixes.push(GpsPoint::new(jitter(rng, venue, config.noise_m), t));
            t += config.dwell_sample_s + rng.gen_range(0..=config.dwell_sample_s / 4 + 1);
        }
        visits.push((venue, category, arrive, depart));

        // Drive to the next venue along a bent two-segment path.
        if let Some(&(next, _, _)) = plan.get(i + 1) {
            let path = bent_path(rng, venue, next);
            let distance = polyline::length(&path);
            let duration = (distance / PROBE_SPEED_MPS).max(60.0) as Timestamp;
            let mut t = depart;
            while t < depart + duration {
                let frac = (t - depart) as f64 / duration as f64;
                let pos = polyline::point_at(&path, frac).expect("non-empty path");
                fixes.push(GpsPoint::new(jitter(rng, pos, config.noise_m), t));
                t += config.drive_sample_s;
            }
            now = depart + duration;
        }
    }

    ProbeTrack {
        track: GpsTrajectory::new(fixes),
        visits,
    }
}

/// A two-segment path from `a` to `b` via a lateral bend (roads are not
/// straight lines).
fn bent_path(rng: &mut ChaCha8Rng, a: LocalPoint, b: LocalPoint) -> Vec<LocalPoint> {
    let mid = (a + b) / 2.0;
    let d = b - a;
    let len = a.distance(&b).max(1.0);
    // Perpendicular offset up to 15% of the leg length.
    let off = rng.gen_range(-0.15..0.15) * len;
    let bend = mid + LocalPoint::new(-d.y / len, d.x / len) * off;
    vec![a, bend, b]
}

fn jitter(rng: &mut ChaCha8Rng, pos: LocalPoint, sigma: f64) -> LocalPoint {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let mag = sigma * (-2.0 * u1.ln()).sqrt();
    pos + LocalPoint::new(mag * u2.cos(), mag * u2.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CityConfig;

    fn tracks() -> Vec<ProbeTrack> {
        let city = CityModel::generate(&CityConfig::tiny(3));
        generate_probe_tracks(
            &city,
            &GpsConfig {
                n_probes: 10,
                ..GpsConfig::default()
            },
        )
    }

    #[test]
    fn tracks_are_time_ordered_and_nonempty() {
        for pt in tracks() {
            assert!(pt.track.len() > 50, "a full day should have many fixes");
            assert!(pt.track.points.windows(2).all(|w| w[0].time < w[1].time));
        }
    }

    #[test]
    fn visits_cover_home_and_work() {
        for pt in tracks() {
            assert!(pt.visits.len() >= 3);
            assert_eq!(pt.visits[0].1, Category::Residence);
            assert_eq!(pt.visits.last().unwrap().1, Category::Residence);
            assert!(pt.visits.iter().any(|v| v.1 == Category::Business));
        }
    }

    #[test]
    fn dwell_fixes_hug_the_venue() {
        for pt in tracks().into_iter().take(3) {
            let (venue, _, arrive, depart) = pt.visits[1]; // work dwell
            let dwell_fixes: Vec<_> = pt
                .track
                .points
                .iter()
                .filter(|f| f.time >= arrive && f.time < depart)
                .collect();
            assert!(!dwell_fixes.is_empty());
            for f in dwell_fixes {
                assert!(f.pos.distance(&venue) < 80.0, "dwell fix strayed");
            }
        }
    }

    #[test]
    fn deterministic() {
        let city = CityModel::generate(&CityConfig::tiny(9));
        let cfg = GpsConfig {
            n_probes: 5,
            ..GpsConfig::default()
        };
        let a = generate_probe_tracks(&city, &cfg);
        let b = generate_probe_tracks(&city, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.track.points, y.track.points);
        }
    }

    #[test]
    fn stay_point_detection_recovers_the_visits() {
        // The end-to-end property this module exists for: Definition 5's
        // detector applied to the raw track finds the planned dwells.
        use pm_core::params::MinerParams;
        use pm_core::recognize::detect_stay_points;
        let params = MinerParams::default(); // theta_t = 20 min, theta_d = 100 m
        let mut recovered = 0usize;
        let mut planned = 0usize;
        for pt in tracks() {
            let stays = detect_stay_points(&pt.track, &params);
            for &(venue, _, arrive, depart) in &pt.visits {
                if depart - arrive < params.theta_t {
                    continue; // too short to be detectable by definition
                }
                planned += 1;
                if stays.iter().any(|sp| sp.pos.distance(&venue) < 100.0) {
                    recovered += 1;
                }
            }
        }
        assert!(planned > 0);
        let rate = recovered as f64 / planned as f64;
        assert!(rate > 0.9, "recovered only {recovered}/{planned} dwells");
    }
}
