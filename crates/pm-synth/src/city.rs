//! The city model: themed districts, multi-purpose towers, an airport and
//! hospitals.
//!
//! Districts implement the *semantic homogeneity* the CSD exploits (a
//! shopping street, an office block); towers implement *spatial homogeneity*
//! (mixed categories stacked within a building footprint). A fraction of
//! business districts are designated CBDs that attract most commuters, which
//! concentrates commute destinations the way real employment centers do.

use crate::config::CityConfig;
use pm_core::types::Category;
use pm_geo::LocalPoint;
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A themed district: a disk dominated by one category, with a handful of
/// *venues* — the concrete spots taxi trips start and end at.
#[derive(Debug, Clone)]
pub struct District {
    /// District center.
    pub center: LocalPoint,
    /// District radius in meters.
    pub radius: f64,
    /// Dominant category.
    pub category: Category,
    /// Trip anchor points inside the district.
    pub venues: Vec<LocalPoint>,
    /// Whether this business district is a central business district
    /// (attracts a large share of commuters).
    pub is_cbd: bool,
}

/// A multi-purpose tower: mixed-category POIs within a building footprint.
#[derive(Debug, Clone)]
pub struct Tower {
    /// Tower location.
    pub center: LocalPoint,
    /// Footprint radius in meters (within the paper's `d_v` scale).
    pub radius: f64,
}

/// The generated city.
#[derive(Debug, Clone)]
pub struct CityModel {
    /// Generator configuration.
    pub config: CityConfig,
    /// All districts; `districts[airport]` is the airport.
    pub districts: Vec<District>,
    /// Index of the airport district.
    pub airport: usize,
    /// Indices of hospital districts.
    pub hospitals: Vec<usize>,
    /// Multi-purpose towers.
    pub towers: Vec<Tower>,
}

/// How likely each category is to anchor a district. Residences, offices and
/// shops dominate the urban fabric; rare categories get thin slices. Order
/// matches [`Category::ALL`].
const DISTRICT_WEIGHTS: [f64; Category::COUNT] = [
    0.30, // Residence
    0.13, // Shop
    0.15, // Business
    0.09, // Restaurant
    0.08, // Entertainment
    0.06, // PublicService
    0.04, // TrafficStation
    0.04, // Education
    0.02, // Sports
    0.02, // Government
    0.02, // Industry
    0.02, // Financial
    0.00, // Medical (placed explicitly as hospitals)
    0.02, // Hotel
    0.01, // Tourism
];

impl CityModel {
    /// Generates the city deterministically from `config.seed`.
    pub fn generate(config: &CityConfig) -> CityModel {
        config.validate().expect("invalid city config");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xC17E);
        let half = config.extent_m / 2.0;

        let weights = WeightedIndex::new(DISTRICT_WEIGHTS).expect("static weights");
        let mut districts = Vec::with_capacity(config.n_districts + 4);

        // Regular themed districts.
        for _ in 0..config.n_districts {
            let category = Category::from_index(weights.sample(&mut rng));
            districts.push(Self::make_district(&mut rng, half, category, false));
        }

        // Designate ~20% of business districts as CBDs; guarantee at least
        // one by appending if none rolled.
        let mut has_cbd = false;
        for d in &mut districts {
            if d.category == Category::Business && rng.gen_bool(0.25) {
                d.is_cbd = true;
                has_cbd = true;
            }
        }
        if !has_cbd {
            districts.push(Self::make_district(
                &mut rng,
                half * 0.3,
                Category::Business,
                true,
            ));
        }
        // Guarantee at least one residential district (trip origins).
        if !districts.iter().any(|d| d.category == Category::Residence) {
            districts.push(Self::make_district(
                &mut rng,
                half,
                Category::Residence,
                false,
            ));
        }

        // The airport: a large traffic hub at the city edge.
        let airport = districts.len();
        districts.push(District {
            center: LocalPoint::new(half * 0.85, half * 0.1),
            radius: 400.0,
            category: Category::TrafficStation,
            venues: vec![LocalPoint::new(half * 0.85, half * 0.1)],
            is_cbd: false,
        });

        // Hospitals: a few compact medical districts.
        let n_hospitals = (config.n_districts / 40).max(2);
        let mut hospitals = Vec::with_capacity(n_hospitals);
        for _ in 0..n_hospitals {
            hospitals.push(districts.len());
            districts.push(Self::make_district(
                &mut rng,
                half * 0.7,
                Category::Medical,
                false,
            ));
        }

        // Towers cluster toward the center where land is scarce.
        let towers = (0..config.n_towers)
            .map(|_| Tower {
                center: LocalPoint::new(
                    rng.gen_range(-half * 0.5..half * 0.5),
                    rng.gen_range(-half * 0.5..half * 0.5),
                ),
                radius: rng.gen_range(6.0..12.0),
            })
            .collect();

        CityModel {
            config: *config,
            districts,
            airport,
            hospitals,
            towers,
        }
    }

    fn make_district(
        rng: &mut ChaCha8Rng,
        half: f64,
        category: Category,
        is_cbd: bool,
    ) -> District {
        let center = LocalPoint::new(rng.gen_range(-half..half), rng.gen_range(-half..half));
        let radius = rng.gen_range(120.0..300.0);
        // One venue *compound* per district: an anchor spot plus up to two
        // satellite spots 30-70 m away (a compound's entrances/buildings).
        // Trips concentrate on the compound, which keeps stay-point groups
        // venue-scale (tens of meters, the paper's Fig. 9 sparsity range),
        // while the multi-spot structure is what fragments ROI hot regions.
        let a = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = radius * rng.gen_range(0.0..0.4f64).sqrt();
        let anchor = center + LocalPoint::new(r * a.cos(), r * a.sin());
        let mut venues = vec![anchor];
        for _ in 0..rng.gen_range(0..=2usize) {
            let b = rng.gen_range(0.0..std::f64::consts::TAU);
            let d = rng.gen_range(30.0..70.0);
            venues.push(anchor + LocalPoint::new(d * b.cos(), d * b.sin()));
        }
        District {
            center,
            radius,
            category,
            venues,
            is_cbd,
        }
    }

    /// Indices of districts with the given category.
    pub fn districts_of(&self, category: Category) -> Vec<usize> {
        self.districts
            .iter()
            .enumerate()
            .filter(|(_, d)| d.category == category)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of CBD districts.
    pub fn cbds(&self) -> Vec<usize> {
        self.districts
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_cbd)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CityConfig::tiny(42);
        let a = CityModel::generate(&cfg);
        let b = CityModel::generate(&cfg);
        assert_eq!(a.districts.len(), b.districts.len());
        for (da, db) in a.districts.iter().zip(&b.districts) {
            assert_eq!(da.center, db.center);
            assert_eq!(da.category, db.category);
            assert_eq!(da.venues, db.venues);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityModel::generate(&CityConfig::tiny(1));
        let b = CityModel::generate(&CityConfig::tiny(2));
        let same = a
            .districts
            .iter()
            .zip(&b.districts)
            .filter(|(x, y)| x.center == y.center)
            .count();
        assert!(same < a.districts.len() / 2);
    }

    #[test]
    fn structural_guarantees() {
        let city = CityModel::generate(&CityConfig::tiny(7));
        assert!(!city.cbds().is_empty(), "at least one CBD");
        assert!(!city.districts_of(Category::Residence).is_empty());
        assert_eq!(
            city.districts[city.airport].category,
            Category::TrafficStation
        );
        assert!(city.hospitals.len() >= 2);
        for &h in &city.hospitals {
            assert_eq!(city.districts[h].category, Category::Medical);
        }
    }

    #[test]
    fn venue_compounds_stay_near_their_district() {
        let city = CityModel::generate(&CityConfig::small(3));
        for d in &city.districts {
            assert!(!d.venues.is_empty() && d.venues.len() <= 3);
            // The anchor spot lies inside the district; satellites are at
            // most 90 m beyond it.
            assert!(d.venues[0].distance(&d.center) <= d.radius + 1e-9);
            for v in &d.venues[1..] {
                assert!(v.distance(&d.venues[0]) <= 70.0 + 1e-9);
            }
        }
    }

    #[test]
    fn districts_fit_in_extent() {
        let cfg = CityConfig::tiny(9);
        let city = CityModel::generate(&cfg);
        let half = cfg.extent_m / 2.0;
        for d in &city.districts {
            assert!(d.center.x.abs() <= half && d.center.y.abs() <= half);
        }
    }

    #[test]
    fn towers_have_building_scale_footprints() {
        let city = CityModel::generate(&CityConfig::small(11));
        assert!(!city.towers.is_empty());
        for t in &city.towers {
            assert!(t.radius <= 15.0, "tower footprint beyond d_v scale");
        }
    }
}
