//! Taxi-trip generation: the time-of-week activity schedule.
//!
//! Every passenger owns fixed anchors — home, work (CBD-biased), the shop
//! and restaurant nearest to work, a leisure venue near home and the
//! hospital nearest home. Day plans sample the weekday/weekend behaviours
//! the paper's Fig. 14 demonstrates: dense morning commutes, a quiet midday,
//! evening shopping/dining chains, sparse irregular weekends, steady airport
//! demand and occasional hospital visits. Each trip leg becomes a taxi
//! journey with GPS noise at both ends; travel time is distance over a
//! ~25 km/h urban speed, so the paper's ~30-minute average trip duration
//! (the mechanism behind Fig. 13's delta_t = 15 min dip) emerges naturally.

use crate::city::CityModel;
use pm_core::types::{Category, GpsPoint, SemanticTrajectory, StayPoint, Timestamp, DAY_SECS};
use pm_geo::LocalPoint;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One taxi journey: a pick-up and a drop-off, optionally linked to a
/// payment-card passenger, with the ground-truth activity categories the
/// generator knows (used to score semantic recognition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxiJourney {
    /// Pick-up fix.
    pub pickup: GpsPoint,
    /// Drop-off fix.
    pub dropoff: GpsPoint,
    /// Card id when the passenger is in the carded 20%.
    pub passenger: Option<u64>,
    /// Ground truth: activity category at the origin.
    pub true_from: Category,
    /// Ground truth: activity category at the destination.
    pub true_to: Category,
}

/// The generated taxi corpus.
#[derive(Debug, Clone, Default)]
pub struct TaxiCorpus {
    /// All journeys, in generation order (per passenger, per day, per leg).
    pub journeys: Vec<TaxiJourney>,
}

/// A passenger's fixed anchors.
#[derive(Debug, Clone, Copy)]
struct Passenger {
    home: Anchor,
    work: Anchor,
    shop: Anchor,
    restaurant: Anchor,
    leisure: Anchor,
    hospital: Anchor,
    airport: Anchor,
    card: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Anchor {
    /// Primary spot of the compound (used for distances/travel times).
    pos: LocalPoint,
    /// District index (to resolve a random compound spot per trip).
    district: u32,
    category: Category,
}

/// Urban taxi speed in m/s (~25 km/h).
const SPEED_MPS: f64 = 7.0;

/// Shared venue pools for irregular trips.
struct Pools<'a> {
    leisure: &'a [Anchor],
    errand: &'a [Anchor],
}

impl TaxiCorpus {
    /// Generates the corpus for `city`, deterministic given the seed.
    pub fn generate(city: &CityModel) -> TaxiCorpus {
        let config = &city.config;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x7A11);
        let passengers = Self::make_passengers(city, &mut rng);

        // Shared venue pools for irregular behaviour: weekend leisure picks
        // a random venue (not a fixed anchor), and occasional errands can
        // target any district — the "sparse and irregular" weekend traffic
        // of Fig. 14(d)-(f).
        let leisure_pool: Vec<Anchor> = city
            .districts
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                matches!(
                    d.category,
                    Category::Shop | Category::Entertainment | Category::Restaurant
                )
            })
            .map(|(i, d)| Anchor {
                pos: d.venues[0],
                district: i as u32,
                category: d.category,
            })
            .collect();
        let errand_pool: Vec<Anchor> = city
            .districts
            .iter()
            .enumerate()
            .map(|(i, d)| Anchor {
                pos: d.venues[0],
                district: i as u32,
                category: d.category,
            })
            .collect();
        let pools = Pools {
            leisure: &leisure_pool,
            errand: &errand_pool,
        };

        let mut journeys = Vec::new();
        for day in 0..config.n_days {
            let weekend = day % 7 >= 5;
            for p in &passengers {
                Self::day_plan(
                    city,
                    p,
                    day,
                    weekend,
                    &mut rng,
                    config.gps_noise_m,
                    &pools,
                    &mut journeys,
                );
            }
        }
        TaxiCorpus { journeys }
    }

    fn make_passengers(city: &CityModel, rng: &mut ChaCha8Rng) -> Vec<Passenger> {
        let config = &city.config;
        let residences = city.districts_of(Category::Residence);
        let businesses = city.districts_of(Category::Business);
        let cbds = city.cbds();
        let shops = city.districts_of(Category::Shop);
        let restaurants = city.districts_of(Category::Restaurant);
        let entertainment = city.districts_of(Category::Entertainment);

        let venue = |d: usize| Anchor {
            pos: city.districts[d].venues[0],
            district: d as u32,
            category: city.districts[d].category,
        };
        // Nearest district of a set to a point; falls back to the first
        // business district when the set is empty (tiny cities).
        let nearest = |set: &[usize], from: LocalPoint| -> usize {
            set.iter()
                .copied()
                .min_by(|&a, &b| {
                    city.districts[a].venues[0]
                        .distance_sq(&from)
                        .total_cmp(&city.districts[b].venues[0].distance_sq(&from))
                })
                .unwrap_or(cbds[0])
        };

        let n_carded = (config.n_passengers as f64 * config.carded_fraction).round() as usize;
        (0..config.n_passengers)
            .map(|i| {
                let home = venue(residences[rng.gen_range(0..residences.len())]);
                // 70% of commuters work in a CBD, the rest anywhere business.
                let work_district = if rng.gen_bool(0.7) || businesses.is_empty() {
                    cbds[rng.gen_range(0..cbds.len())]
                } else {
                    businesses[rng.gen_range(0..businesses.len())]
                };
                let work = venue(work_district);
                // Errand anchors correlate with daily life: the shop and
                // restaurant nearest work, leisure nearest home.
                let shop = venue(nearest(&shops, work.pos));
                let restaurant = venue(nearest(&restaurants, work.pos));
                let leisure = venue(nearest(
                    if entertainment.is_empty() {
                        &shops
                    } else {
                        &entertainment
                    },
                    home.pos,
                ));
                let hospital = venue(nearest(&city.hospitals, home.pos));
                let airport = venue(city.airport);
                Passenger {
                    home,
                    work,
                    shop,
                    restaurant,
                    leisure,
                    hospital,
                    airport,
                    card: (i < n_carded).then_some(i as u64),
                }
            })
            .collect()
    }

    /// Samples one passenger-day of taxi legs.
    #[allow(clippy::too_many_arguments)]
    fn day_plan(
        city: &CityModel,
        p: &Passenger,
        day: u32,
        weekend: bool,
        rng: &mut ChaCha8Rng,
        noise: f64,
        pools: &Pools<'_>,
        out: &mut Vec<TaxiJourney>,
    ) {
        let day_start = day as Timestamp * DAY_SECS;
        let h = |hours: f64| (hours * 3600.0) as Timestamp;
        fn jitter(rng: &mut ChaCha8Rng, minutes: f64) -> Timestamp {
            (rng.gen_range(-minutes..minutes) * 60.0) as Timestamp
        }
        macro_rules! leg {
            ($from:expr, $to:expr, $t:expr) => {{
                let t = $t;
                Self::emit(city, p, $from, $to, day_start + t, rng, noise, out)
            }};
        }

        let r: f64 = rng.gen();
        if weekend {
            if r < 0.015 {
                // Hospital visit.
                let j1 = jitter(rng, 45.0);
                let t1 = leg!(p.home, p.hospital, h(9.0) + j1);
                let j2 = jitter(rng, 30.0);
                leg!(p.hospital, p.home, t1 - day_start + h(1.5) + j2);
            } else if r < 0.095 {
                // Airport run (either direction).
                if rng.gen_bool(0.5) {
                    let j = jitter(rng, 150.0);
                    leg!(p.home, p.airport, h(8.0) + j);
                } else {
                    let j = jitter(rng, 150.0);
                    leg!(p.airport, p.home, h(18.0) + j);
                }
            } else if r < 0.5 {
                // Free-form leisure at an irregular hour: half the time the
                // usual neighbourhood haunt, half the time a random venue
                // anywhere in town.
                let dest = if rng.gen_bool(0.5) || pools.leisure.is_empty() {
                    match rng.gen_range(0..3) {
                        0 => p.shop,
                        1 => p.leisure,
                        _ => p.restaurant,
                    }
                } else {
                    pools.leisure[rng.gen_range(0..pools.leisure.len())]
                };
                let t_out = h(rng.gen_range(9.0..19.0));
                let t1 = leg!(p.home, dest, t_out);
                let dwell = h(rng.gen_range(1.0..3.5));
                leg!(dest, p.home, t1 - day_start + dwell);
            }
            return;
        }

        // ---- Weekday ----
        if r < 0.045 {
            // Hospital visit (morning out, late-morning back).
            let j1 = jitter(rng, 45.0);
            let t1 = leg!(p.home, p.hospital, h(9.0) + j1);
            let j2 = jitter(rng, 30.0);
            leg!(p.hospital, p.home, t1 - day_start + h(1.5) + j2);
            return;
        }
        if r < 0.145 {
            // Airport run.
            if rng.gen_bool(0.5) {
                let j = jitter(rng, 90.0);
                leg!(p.home, p.airport, h(7.5) + j);
            } else {
                let j = jitter(rng, 90.0);
                leg!(p.airport, p.home, h(19.0) + j);
            }
            return;
        }
        if r < 0.195 {
            // Background errand: a round trip to a random district at an
            // odd hour — irregular traffic that no pattern should absorb.
            let dest = pools.errand[rng.gen_range(0..pools.errand.len())];
            let t_out = h(rng.gen_range(9.0..20.0));
            let t1 = leg!(p.home, dest, t_out);
            let dwell = h(rng.gen_range(0.5..2.0));
            leg!(dest, p.home, t1 - day_start + dwell);
            return;
        }
        if r < 0.92 {
            // Commute day.
            let j = jitter(rng, 45.0);
            leg!(p.home, p.work, h(8.0) + j);
            // Occasional midday restaurant round trip.
            if rng.gen_bool(0.12) {
                let j = jitter(rng, 20.0);
                let t1 = leg!(p.work, p.restaurant, h(12.0) + j);
                leg!(p.restaurant, p.work, t1 - day_start + h(0.8));
            }
            // Evening behaviour.
            let u: f64 = rng.gen();
            if u < 0.25 {
                // Work -> shop -> home chain with a short browse.
                let j1 = jitter(rng, 40.0);
                let t1 = leg!(p.work, p.shop, h(18.0) + j1);
                let j2 = jitter(rng, 10.0);
                leg!(p.shop, p.home, t1 - day_start + h(0.7) + j2);
            } else if u < 0.45 {
                // Work -> restaurant -> home.
                let j1 = jitter(rng, 40.0);
                let t1 = leg!(p.work, p.restaurant, h(18.5) + j1);
                let j2 = jitter(rng, 10.0);
                leg!(p.restaurant, p.home, t1 - day_start + h(0.9) + j2);
            } else {
                // Straight home.
                let j = jitter(rng, 60.0);
                leg!(p.work, p.home, h(18.0) + j);
            }
        }
        // else: no taxi today.
    }

    /// Emits one journey and returns the drop-off time. Each endpoint picks
    /// a random spot of its compound (a mall has several entrances).
    #[allow(clippy::too_many_arguments)]
    fn emit(
        city: &CityModel,
        p: &Passenger,
        from: Anchor,
        to: Anchor,
        depart: Timestamp,
        rng: &mut ChaCha8Rng,
        noise: f64,
        out: &mut Vec<TaxiJourney>,
    ) -> Timestamp {
        let spot = |rng: &mut ChaCha8Rng, a: &Anchor| -> LocalPoint {
            let spots = &city.districts[a.district as usize].venues;
            spots[rng.gen_range(0..spots.len())]
        };
        let from_spot = spot(rng, &from);
        let to_spot = spot(rng, &to);
        let travel =
            ((from_spot.distance(&to_spot) / SPEED_MPS) * rng.gen_range(0.9..1.3)).max(240.0);
        let arrive = depart + travel as Timestamp;
        out.push(TaxiJourney {
            pickup: GpsPoint::new(gauss_jitter(rng, from_spot, noise), depart),
            dropoff: GpsPoint::new(gauss_jitter(rng, to_spot, noise), arrive),
            passenger: p.card,
            true_from: from.category,
            true_to: to.category,
        });
        arrive
    }

    /// Links the corpus into semantic trajectories, as §5 of the paper does:
    /// carded passengers' journeys within one day chain into a multi-stay
    /// trajectory (pick-up of the first leg, then every drop-off); anonymous
    /// journeys become two-stay trajectories. Stay points are untagged —
    /// semantic recognition fills the tags in.
    pub fn semantic_trajectories(&self) -> Vec<SemanticTrajectory> {
        self.trajectories_with_truth().0
    }

    /// Like [`TaxiCorpus::semantic_trajectories`], additionally returning
    /// the ground-truth category of every stay point (aligned per
    /// trajectory/stay), for recognition-accuracy scoring.
    pub fn trajectories_with_truth(&self) -> (Vec<SemanticTrajectory>, Vec<Vec<Category>>) {
        let mut out = Vec::new();
        let mut truth = Vec::new();

        // Group carded journeys by (passenger, day); keep anonymous ones
        // singleton. Journeys are generated per passenger per day in time
        // order, so a linear scan suffices.
        let mut chains: std::collections::HashMap<(u64, i64), Vec<&TaxiJourney>> =
            std::collections::HashMap::new();
        for j in &self.journeys {
            match j.passenger {
                Some(card) => {
                    chains
                        .entry((card, j.pickup.time.div_euclid(DAY_SECS)))
                        .or_default()
                        .push(j);
                }
                None => {
                    out.push(SemanticTrajectory::new(vec![
                        StayPoint::untagged(j.pickup.pos, j.pickup.time),
                        StayPoint::untagged(j.dropoff.pos, j.dropoff.time),
                    ]));
                    truth.push(vec![j.true_from, j.true_to]);
                }
            }
        }

        let mut keys: Vec<(u64, i64)> = chains.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let mut legs = chains.remove(&key).expect("key from map");
            legs.sort_by_key(|j| j.pickup.time);
            let mut stays = vec![StayPoint::untagged(legs[0].pickup.pos, legs[0].pickup.time)];
            let mut cats = vec![legs[0].true_from];
            for j in &legs {
                stays.push(StayPoint::untagged(j.dropoff.pos, j.dropoff.time));
                cats.push(j.true_to);
            }
            out.push(SemanticTrajectory::new(stays).with_passenger(key.0));
            truth.push(cats);
        }
        (out, truth)
    }

    /// Every pick-up and drop-off location — the stay-point corpus `D_sp`
    /// behind popularity estimation.
    pub fn stay_point_locations(&self) -> Vec<LocalPoint> {
        self.journeys
            .iter()
            .flat_map(|j| [j.pickup.pos, j.dropoff.pos])
            .collect()
    }
}

/// Adds isotropic Gaussian noise (Box–Muller) with the given sigma.
fn gauss_jitter(rng: &mut ChaCha8Rng, pos: LocalPoint, sigma: f64) -> LocalPoint {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let mag = sigma * (-2.0 * u1.ln()).sqrt();
    pos + LocalPoint::new(mag * u2.cos(), mag * u2.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CityConfig;

    fn corpus(seed: u64) -> (CityModel, TaxiCorpus) {
        let city = CityModel::generate(&CityConfig::tiny(seed));
        let corpus = TaxiCorpus::generate(&city);
        (city, corpus)
    }

    #[test]
    fn generates_a_plausible_volume() {
        let (_, c) = corpus(1);
        // 350 passengers x 3 days x O(1) journeys/day.
        assert!(c.journeys.len() > 400, "got {}", c.journeys.len());
        assert!(c.journeys.len() < 5_000);
    }

    #[test]
    fn deterministic() {
        let (_, a) = corpus(5);
        let (_, b) = corpus(5);
        assert_eq!(a.journeys.len(), b.journeys.len());
        assert!(a.journeys.iter().zip(&b.journeys).all(|(x, y)| x == y));
    }

    #[test]
    fn journeys_are_time_consistent() {
        let (_, c) = corpus(2);
        for j in &c.journeys {
            assert!(j.dropoff.time > j.pickup.time);
            let dur = j.dropoff.time - j.pickup.time;
            assert!((240..7_200).contains(&dur), "trip duration {dur}s");
        }
    }

    #[test]
    fn trip_durations_average_around_half_an_hour() {
        // The paper observes ~30 min average Shanghai taxi trips; our travel
        // model should land in the same regime (10–40 min mean).
        let city = CityModel::generate(&CityConfig::small(3));
        let c = TaxiCorpus::generate(&city);
        let mean = c
            .journeys
            .iter()
            .map(|j| (j.dropoff.time - j.pickup.time) as f64)
            .sum::<f64>()
            / c.journeys.len() as f64;
        assert!((600.0..2_400.0).contains(&mean), "mean duration {mean}s");
    }

    #[test]
    fn carded_fraction_matches_config() {
        let (city, c) = corpus(4);
        let carded = c.journeys.iter().filter(|j| j.passenger.is_some()).count();
        let frac = carded as f64 / c.journeys.len() as f64;
        let expect = city.config.carded_fraction;
        assert!((frac - expect).abs() < 0.1, "carded fraction {frac}");
    }

    #[test]
    fn weekday_mornings_are_commute_heavy() {
        let city = CityModel::generate(&CityConfig::small(7)); // 7 days
        let c = TaxiCorpus::generate(&city);
        let morning_commutes = c
            .journeys
            .iter()
            .filter(|j| {
                let day = j.pickup.time.div_euclid(DAY_SECS) % 7;
                let hour = j.pickup.time.rem_euclid(DAY_SECS) / 3600;
                day < 5
                    && (6..10).contains(&hour)
                    && j.true_from == Category::Residence
                    && j.true_to == Category::Business
            })
            .count();
        assert!(
            morning_commutes as f64 > c.journeys.len() as f64 * 0.15,
            "{morning_commutes} of {}",
            c.journeys.len()
        );
    }

    #[test]
    fn weekends_are_sparser_than_weekdays() {
        let city = CityModel::generate(&CityConfig::small(8));
        let c = TaxiCorpus::generate(&city);
        let mut per_day = [0usize; 7];
        for j in &c.journeys {
            per_day[(j.pickup.time.div_euclid(DAY_SECS) % 7) as usize] += 1;
        }
        let weekday_avg = per_day[..5].iter().sum::<usize>() as f64 / 5.0;
        let weekend_avg = per_day[5..].iter().sum::<usize>() as f64 / 2.0;
        assert!(
            weekend_avg < weekday_avg * 0.7,
            "wd {weekday_avg} we {weekend_avg}"
        );
    }

    #[test]
    fn airport_draws_meaningful_demand() {
        let city = CityModel::generate(&CityConfig::small(9));
        let c = TaxiCorpus::generate(&city);
        let airport_pos = city.districts[city.airport].venues[0];
        let touching = c
            .journeys
            .iter()
            .filter(|j| {
                j.pickup.pos.distance(&airport_pos) < 200.0
                    || j.dropoff.pos.distance(&airport_pos) < 200.0
            })
            .count();
        let frac = touching as f64 / c.journeys.len() as f64;
        assert!(frac > 0.02, "airport fraction {frac}");
    }

    #[test]
    fn hospital_trips_exist() {
        let city = CityModel::generate(&CityConfig::small(10));
        let c = TaxiCorpus::generate(&city);
        let medical = c
            .journeys
            .iter()
            .filter(|j| j.true_to == Category::Medical)
            .count();
        assert!(medical > 0);
    }

    #[test]
    fn linking_produces_multi_stay_chains() {
        let (_, c) = corpus(11);
        let (trajs, truth) = c.trajectories_with_truth();
        assert_eq!(trajs.len(), truth.len());
        let long = trajs.iter().filter(|t| t.len() >= 3).count();
        assert!(long > 0, "carded passengers must yield >= 3-stay chains");
        for (t, cats) in trajs.iter().zip(&truth) {
            assert_eq!(t.len(), cats.len());
            assert!(t.stays.windows(2).all(|w| w[0].time <= w[1].time));
        }
        // Long chains belong to carded passengers.
        for t in trajs.iter().filter(|t| t.len() > 2) {
            assert!(t.passenger.is_some());
        }
    }

    #[test]
    fn stay_point_locations_count() {
        let (_, c) = corpus(12);
        assert_eq!(c.stay_point_locations().len(), c.journeys.len() * 2);
    }

    #[test]
    fn gps_noise_stays_near_anchor() {
        let (city, c) = corpus(13);
        // Each pickup should be within ~5 sigma of *some* venue.
        let venues: Vec<LocalPoint> = city
            .districts
            .iter()
            .flat_map(|d| d.venues.clone())
            .collect();
        let max_noise = city.config.gps_noise_m * 5.0;
        for j in c.journeys.iter().take(200) {
            let near = venues
                .iter()
                .any(|v| v.distance(&j.pickup.pos) <= max_noise);
            assert!(near, "pickup far from every venue");
        }
    }
}
