//! Check-in simulation with per-category sharing bias — the *semantic bias*
//! mechanism behind the paper's Table 1.
//!
//! Check-in corpora are not a faithful sample of activities: users share
//! dinners and gyms, not doctor visits; Tokyo users additionally keep their
//! homes off the grid. The simulator replays the taxi corpus's ground-truth
//! destination activities through a sharing-probability profile, so the
//! *reported* topic distribution diverges from the *actual* one exactly the
//! way Table 1 shows.

use crate::trips::TaxiCorpus;
use pm_core::types::{Category, GpsPoint};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One shared check-in: where, when, and the reported topic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkin {
    /// Location/time of the shared activity.
    pub fix: GpsPoint,
    /// The reported topic (the activity's true category — bias acts by
    /// omission, not mislabeling).
    pub topic: Category,
}

/// Per-category probability that a performed activity is shared online.
#[derive(Debug, Clone, Copy)]
pub struct SharingProfile {
    /// Display name ("New York"-like, "Tokyo"-like).
    pub name: &'static str,
    probs: [f64; Category::COUNT],
}

impl SharingProfile {
    /// A New-York-like profile (paper Table 1, left): dining, entertainment
    /// and even home check-ins are common; medical visits are all but never
    /// shared.
    pub fn new_york() -> Self {
        let mut probs = [0.05; Category::COUNT];
        probs[Category::Restaurant as usize] = 0.55;
        probs[Category::Entertainment as usize] = 0.50;
        probs[Category::Shop as usize] = 0.30;
        probs[Category::Residence as usize] = 0.35; // "Home (private)" tops NYC
        probs[Category::Business as usize] = 0.30; // "Office"
        probs[Category::TrafficStation as usize] = 0.25;
        probs[Category::Sports as usize] = 0.40; // "Fitness Center"
        probs[Category::Tourism as usize] = 0.45;
        probs[Category::Hotel as usize] = 0.20;
        probs[Category::Medical as usize] = 0.002;
        probs[Category::Government as usize] = 0.01;
        Self {
            name: "New York",
            probs,
        }
    }

    /// A Tokyo-like profile (paper Table 1, right): transit and food
    /// dominate; homes are kept secret; medical still invisible.
    pub fn tokyo() -> Self {
        let mut probs = [0.03; Category::COUNT];
        probs[Category::TrafficStation as usize] = 0.80; // Train Station 35%+
        probs[Category::Restaurant as usize] = 0.45;
        probs[Category::Shop as usize] = 0.25;
        probs[Category::Entertainment as usize] = 0.15;
        probs[Category::Residence as usize] = 0.01; // homes stay secret
        probs[Category::Business as usize] = 0.05;
        probs[Category::Medical as usize] = 0.001;
        probs[Category::Government as usize] = 0.005;
        Self {
            name: "Tokyo",
            probs,
        }
    }

    /// Sharing probability for a category.
    pub fn prob(&self, c: Category) -> f64 {
        self.probs[c as usize]
    }
}

/// Replays the corpus's destination activities through a sharing profile.
/// Deterministic given `seed`.
pub fn generate_checkins(corpus: &TaxiCorpus, profile: &SharingProfile, seed: u64) -> Vec<Checkin> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC4EC);
    corpus
        .journeys
        .iter()
        .filter_map(|j| {
            rng.gen_bool(profile.prob(j.true_to).clamp(0.0, 1.0))
                .then_some(Checkin {
                    fix: j.dropoff,
                    topic: j.true_to,
                })
        })
        .collect()
}

/// Topic histogram of a check-in corpus, sorted descending — the Table 1
/// regeneration. Returns `(category, count, share)` rows.
pub fn topic_ranking(checkins: &[Checkin]) -> Vec<(Category, usize, f64)> {
    let mut counts = [0usize; Category::COUNT];
    for c in checkins {
        counts[c.topic as usize] += 1;
    }
    let total: usize = counts.iter().sum();
    let mut rows: Vec<(Category, usize, f64)> = Category::ALL
        .iter()
        .map(|&c| {
            let n = counts[c as usize];
            (
                c,
                n,
                if total == 0 {
                    0.0
                } else {
                    n as f64 / total as f64
                },
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityModel;
    use crate::config::CityConfig;

    fn corpus() -> TaxiCorpus {
        TaxiCorpus::generate(&CityModel::generate(&CityConfig::small(17)))
    }

    #[test]
    fn checkins_are_a_biased_subsample() {
        let c = corpus();
        let checkins = generate_checkins(&c, &SharingProfile::new_york(), 1);
        assert!(!checkins.is_empty());
        assert!(checkins.len() < c.journeys.len());
    }

    #[test]
    fn medical_visits_vanish_from_checkins() {
        let c = corpus();
        let actual_medical = c
            .journeys
            .iter()
            .filter(|j| j.true_to == Category::Medical)
            .count();
        assert!(actual_medical > 0, "need medical trips in the corpus");
        for profile in [SharingProfile::new_york(), SharingProfile::tokyo()] {
            let checkins = generate_checkins(&c, &profile, 2);
            let shared_medical = checkins
                .iter()
                .filter(|c| c.topic == Category::Medical)
                .count();
            let share = shared_medical as f64 / checkins.len().max(1) as f64;
            assert!(share < 0.01, "{}: medical share {share}", profile.name);
        }
    }

    #[test]
    fn tokyo_hides_homes_new_york_does_not() {
        let c = corpus();
        let ny = topic_ranking(&generate_checkins(&c, &SharingProfile::new_york(), 3));
        let tk = topic_ranking(&generate_checkins(&c, &SharingProfile::tokyo(), 3));
        let rank = |rows: &[(Category, usize, f64)], cat: Category| {
            rows.iter().position(|r| r.0 == cat).unwrap()
        };
        assert!(rank(&ny, Category::Residence) < rank(&tk, Category::Residence));
        // Transit ranks far higher in the Tokyo-like list (paper: Train
        // Station 34.93% tops Tokyo). Our corpus only sees taxi-reachable
        // transit (the airport), so we assert the relative shape.
        assert!(rank(&tk, Category::TrafficStation) < rank(&ny, Category::TrafficStation));
        assert!(rank(&tk, Category::TrafficStation) <= 4);
    }

    #[test]
    fn ranking_shares_sum_to_one() {
        let c = corpus();
        let rows = topic_ranking(&generate_checkins(&c, &SharingProfile::tokyo(), 5));
        let total: f64 = rows.iter().map(|r| r.2).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1, "ranking must be descending");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = corpus();
        let a = generate_checkins(&c, &SharingProfile::new_york(), 9);
        let b = generate_checkins(&c, &SharingProfile::new_york(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_corpus_yields_empty_ranking() {
        let rows = topic_ranking(&[]);
        assert!(rows.iter().all(|r| r.1 == 0 && r.2 == 0.0));
    }
}
