//! Generator configuration and scale presets.

/// Configuration of the synthetic city and its trajectory corpus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CityConfig {
    /// RNG seed; all generators are deterministic given the seed.
    pub seed: u64,
    /// Side of the square city extent, in meters (Shanghai's POI dataset
    /// covers 6,120 km²; the default 20 km square covers the dense core).
    pub extent_m: f64,
    /// Number of themed districts (semantic homogeneity regions).
    pub n_districts: usize,
    /// Number of multi-purpose towers (spatial homogeneity regions).
    pub n_towers: usize,
    /// Number of POIs to generate (category mix follows Table 3).
    pub n_pois: usize,
    /// Number of taxi passengers.
    pub n_passengers: usize,
    /// Fraction of passengers with payment-card ids (paper: 20%).
    pub carded_fraction: f64,
    /// Days of taxi activity to simulate, starting on a Monday.
    pub n_days: u32,
    /// Standard deviation of the GPS noise applied to pick-up/drop-off
    /// locations, in meters.
    pub gps_noise_m: f64,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            extent_m: 20_000.0,
            n_districts: 120,
            n_towers: 20,
            n_pois: 20_000,
            n_passengers: 4_000,
            carded_fraction: 0.2,
            n_days: 7,
            gps_noise_m: 15.0,
        }
    }
}

impl CityConfig {
    /// Tiny preset for unit/integration tests: runs in milliseconds.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            extent_m: 6_000.0,
            n_districts: 18,
            n_towers: 3,
            n_pois: 1_500,
            n_passengers: 350,
            carded_fraction: 0.2,
            n_days: 3,
            gps_noise_m: 15.0,
        }
    }

    /// Small preset for fast benches and examples: a few seconds end-to-end.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            extent_m: 12_000.0,
            n_districts: 60,
            n_towers: 10,
            n_pois: 8_000,
            n_passengers: 1_500,
            carded_fraction: 0.2,
            n_days: 7,
            gps_noise_m: 15.0,
        }
    }

    /// The full evaluation scale used by the figure-regeneration benches.
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Validates configuration sanity.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.extent_m.is_finite() && self.extent_m > 100.0) {
            return Err(format!("extent_m too small: {}", self.extent_m));
        }
        if self.n_districts == 0 {
            return Err("need at least one district".into());
        }
        if !(0.0..=1.0).contains(&self.carded_fraction) {
            return Err(format!(
                "carded_fraction out of range: {}",
                self.carded_fraction
            ));
        }
        if self.n_days == 0 {
            return Err("need at least one day".into());
        }
        if !(self.gps_noise_m.is_finite() && self.gps_noise_m >= 0.0) {
            return Err(format!("bad gps_noise_m: {}", self.gps_noise_m));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(CityConfig::default().validate().is_ok());
        assert!(CityConfig::tiny(1).validate().is_ok());
        assert!(CityConfig::small(2).validate().is_ok());
        assert!(CityConfig::paper(3).validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(CityConfig {
            extent_m: 10.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CityConfig {
            n_districts: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CityConfig {
            carded_fraction: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CityConfig {
            n_days: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CityConfig {
            gps_noise_m: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn presets_scale_monotonically() {
        let t = CityConfig::tiny(0);
        let s = CityConfig::small(0);
        let p = CityConfig::paper(0);
        assert!(t.n_pois < s.n_pois && s.n_pois < p.n_pois);
        assert!(t.n_passengers < s.n_passengers && s.n_passengers < p.n_passengers);
    }
}
