//! POI generation: Table 3's category mix over the city model.
//!
//! Each POI first draws its category from the paper's published shares, then
//! lands either inside a district of that category (clustered around venues,
//! where commuters actually go) or as uniform urban background. Towers add
//! mixed-category POIs within their footprint on top.

use crate::city::CityModel;
use pm_core::types::{Category, Poi};
use pm_geo::LocalPoint;
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Fraction of POIs placed inside a district whose category matches theirs.
const IN_DISTRICT_FRACTION: f64 = 0.6;
/// Fraction of POIs placed inside a *random* district regardless of
/// category — the mixed urban fabric (any busy street has restaurants,
/// banks and shops sprinkled among the dominant venues). This is what makes
/// semantic recognition non-trivial: the paper's *semantic complexity*.
const FABRIC_FRACTION: f64 = 0.2;
/// Of the in-district POIs, the fraction hugging a venue (a mall's shops
/// cluster at the mall) versus scattered across the district.
const NEAR_VENUE_FRACTION: f64 = 0.6;
/// Categories available inside multi-purpose towers.
const TOWER_CATEGORIES: [Category; 6] = [
    Category::Shop,
    Category::Restaurant,
    Category::Business,
    Category::Hotel,
    Category::Entertainment,
    Category::TrafficStation,
];
/// POIs per tower.
const TOWER_POIS: usize = 15;

/// Generates the POI database for `city`. Deterministic given the city's
/// seed. The output length is `config.n_pois + n_towers * 15` (tower POIs
/// come on top of the Table 3 budget).
pub fn generate_pois(city: &CityModel) -> Vec<Poi> {
    let config = &city.config;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x9014);
    let half = config.extent_m / 2.0;

    let shares: Vec<f64> = Category::ALL.iter().map(|c| c.share()).collect();
    let category_dist = WeightedIndex::new(&shares).expect("static shares");

    // District lookup per category, reused across draws.
    let by_category: Vec<Vec<usize>> = Category::ALL
        .iter()
        .map(|&c| city.districts_of(c))
        .collect();

    let mut pois = Vec::with_capacity(config.n_pois + city.towers.len() * TOWER_POIS);
    let mut id = 0u64;

    for _ in 0..config.n_pois {
        let category = Category::from_index(category_dist.sample(&mut rng));
        let candidates = &by_category[category as usize];
        let roll: f64 = rng.gen();
        let district = if roll < IN_DISTRICT_FRACTION && !candidates.is_empty() {
            // A district dominated by this category.
            Some(&city.districts[candidates[rng.gen_range(0..candidates.len())]])
        } else if roll < IN_DISTRICT_FRACTION + FABRIC_FRACTION {
            // Urban fabric: any district, category regardless.
            Some(&city.districts[rng.gen_range(0..city.districts.len())])
        } else {
            None // background
        };
        let pos = match district {
            Some(d) => {
                if rng.gen_bool(NEAR_VENUE_FRACTION) && !d.venues.is_empty() {
                    let v = d.venues[rng.gen_range(0..d.venues.len())];
                    v + polar_jitter(&mut rng, 60.0)
                } else {
                    let a = rng.gen_range(0.0..std::f64::consts::TAU);
                    let r = d.radius * rng.gen_range(0.0..1.0f64).sqrt();
                    d.center + LocalPoint::new(r * a.cos(), r * a.sin())
                }
            }
            None => LocalPoint::new(rng.gen_range(-half..half), rng.gen_range(-half..half)),
        };
        let minor = rng.gen_range(0..category.minor_count());
        pois.push(Poi {
            id,
            pos,
            category,
            minor,
        });
        id += 1;
    }

    // Tower POIs: mixed categories stacked within the footprint.
    for tower in &city.towers {
        for _ in 0..TOWER_POIS {
            let category = TOWER_CATEGORIES[rng.gen_range(0..TOWER_CATEGORIES.len())];
            let pos = tower.center + polar_jitter(&mut rng, tower.radius);
            let minor = rng.gen_range(0..category.minor_count());
            pois.push(Poi {
                id,
                pos,
                category,
                minor,
            });
            id += 1;
        }
    }

    pois
}

/// Uniform point in a disk of the given radius.
fn polar_jitter(rng: &mut ChaCha8Rng, radius: f64) -> LocalPoint {
    let a = rng.gen_range(0.0..std::f64::consts::TAU);
    let r = radius * rng.gen_range(0.0..1.0f64).sqrt();
    LocalPoint::new(r * a.cos(), r * a.sin())
}

/// Category histogram of a POI set — the Table 3 regeneration.
pub fn category_histogram(pois: &[Poi]) -> [usize; Category::COUNT] {
    let mut counts = [0usize; Category::COUNT];
    for p in pois {
        counts[p.category as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CityConfig;

    #[test]
    fn category_mix_tracks_table3() {
        let city = CityModel::generate(&CityConfig::small(5));
        let pois = generate_pois(&city);
        let hist = category_histogram(&pois);
        let total: usize = hist.iter().sum();
        assert_eq!(total, pois.len());
        // The dominant categories must match Table 3's ordering within
        // sampling noise (towers skew the top slightly).
        let res = hist[Category::Residence as usize] as f64 / total as f64;
        assert!((res - 0.18).abs() < 0.04, "Residence share {res}");
        let med = hist[Category::Medical as usize] as f64 / total as f64;
        assert!(med < 0.03, "Medical share {med}");
        assert!(hist[Category::Residence as usize] > hist[Category::Tourism as usize]);
    }

    #[test]
    fn deterministic_given_seed() {
        let city = CityModel::generate(&CityConfig::tiny(8));
        let a = generate_pois(&city);
        let b = generate_pois(&city);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.pos == y.pos && x.category == y.category));
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let city = CityModel::generate(&CityConfig::tiny(8));
        let pois = generate_pois(&city);
        for (i, p) in pois.iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
    }

    #[test]
    fn tower_pois_sit_inside_footprints() {
        let cfg = CityConfig::tiny(13);
        let city = CityModel::generate(&cfg);
        let pois = generate_pois(&city);
        let tower_pois = &pois[cfg.n_pois..];
        assert_eq!(tower_pois.len(), city.towers.len() * TOWER_POIS);
        for (t, chunk) in city.towers.iter().zip(tower_pois.chunks(TOWER_POIS)) {
            for p in chunk {
                assert!(p.pos.distance(&t.center) <= t.radius + 1e-9);
            }
        }
    }

    #[test]
    fn minor_types_respect_per_category_bounds() {
        let city = CityModel::generate(&CityConfig::tiny(21));
        for p in generate_pois(&city) {
            assert!(p.minor < p.category.minor_count());
        }
    }

    #[test]
    fn district_pois_concentrate_in_districts() {
        let cfg = CityConfig::small(4);
        let city = CityModel::generate(&cfg);
        let pois = generate_pois(&city);
        // Count POIs inside some district of their own category.
        let mut inside = 0usize;
        for p in &pois[..cfg.n_pois] {
            let hit = city
                .districts
                .iter()
                .any(|d| d.category == p.category && d.center.distance(&p.pos) <= d.radius + 60.0);
            if hit {
                inside += 1;
            }
        }
        let frac = inside as f64 / cfg.n_pois as f64;
        assert!(frac > 0.4, "in-district fraction {frac}");
    }
}
