//! Deterministic fault injection: seeded corruptions of a trajectory corpus
//! for robustness testing.
//!
//! Real feeds fail in recognizable ways — GPS units emit NaN fixes, logger
//! clocks jump backwards, records get re-sent or cut off mid-line, and a
//! projection bug can fling a point across the planet. Each [`Corruption`]
//! models one such failure mode as an in-place, seed-deterministic mutation
//! of a `Vec<SemanticTrajectory>` corpus (plus [`corrupt_csv`] for the raw
//! ingestion layer), so integration tests can assert the pipeline survives
//! every one of them without panicking.

use pm_core::types::SemanticTrajectory;
use pm_geo::LocalPoint;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One injectable failure mode. Every `fraction` is the per-record
/// probability of corruption, in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Corruption {
    /// Stay-point coordinates replaced with NaN or infinities (dead GPS
    /// channel, failed projection).
    NonFiniteCoordinates {
        /// Per-stay-point corruption probability.
        fraction: f64,
    },
    /// Two stay times within a trajectory swapped (clock skew, out-of-order
    /// delivery), breaking the time-ordered invariant.
    TimestampDisorder {
        /// Per-trajectory corruption probability.
        fraction: f64,
    },
    /// A stay point duplicated in place (record re-sent by the logger).
    DuplicateStays {
        /// Per-stay-point duplication probability.
        fraction: f64,
    },
    /// A stay point displaced by `distance_m` in a random direction
    /// (projection glitch, multipath jump).
    Teleports {
        /// Per-stay-point corruption probability.
        fraction: f64,
        /// Displacement distance in meters.
        distance_m: f64,
    },
    /// A trajectory cut off after a random prefix, possibly to zero stays
    /// (upload interrupted).
    Truncation {
        /// Per-trajectory corruption probability.
        fraction: f64,
    },
}

impl Corruption {
    /// Short machine-checkable name of the failure mode.
    pub fn label(&self) -> &'static str {
        match self {
            Corruption::NonFiniteCoordinates { .. } => "non_finite_coordinates",
            Corruption::TimestampDisorder { .. } => "timestamp_disorder",
            Corruption::DuplicateStays { .. } => "duplicate_stays",
            Corruption::Teleports { .. } => "teleports",
            Corruption::Truncation { .. } => "truncation",
        }
    }

    /// Every failure mode at the same intensity — the sweep a
    /// fault-injection test iterates over.
    pub fn standard_suite(fraction: f64) -> Vec<Corruption> {
        vec![
            Corruption::NonFiniteCoordinates { fraction },
            Corruption::TimestampDisorder { fraction },
            Corruption::DuplicateStays { fraction },
            Corruption::Teleports {
                fraction,
                distance_m: 50_000.0,
            },
            Corruption::Truncation { fraction },
        ]
    }
}

/// One of the five non-finite coordinate shapes, uniformly.
fn non_finite_point(rng: &mut ChaCha8Rng, original: LocalPoint) -> LocalPoint {
    match rng.gen_range(0..5u32) {
        0 => LocalPoint::new(f64::NAN, original.y),
        1 => LocalPoint::new(original.x, f64::NAN),
        2 => LocalPoint::new(f64::NAN, f64::NAN),
        3 => LocalPoint::new(f64::INFINITY, original.y),
        _ => LocalPoint::new(original.x, f64::NEG_INFINITY),
    }
}

/// Applies one corruption to the corpus in place, deterministically per
/// seed, returning how many records (stay points or trajectories, per the
/// variant) were corrupted.
pub fn corrupt_trajectories(
    trajectories: &mut [SemanticTrajectory],
    corruption: &Corruption,
    seed: u64,
) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17);
    let mut touched = 0usize;
    match *corruption {
        Corruption::NonFiniteCoordinates { fraction } => {
            for st in trajectories.iter_mut() {
                for sp in &mut st.stays {
                    if rng.gen_bool(fraction) {
                        sp.pos = non_finite_point(&mut rng, sp.pos);
                        touched += 1;
                    }
                }
            }
        }
        Corruption::TimestampDisorder { fraction } => {
            for st in trajectories.iter_mut() {
                if st.stays.len() >= 2 && rng.gen_bool(fraction) {
                    let i = rng.gen_range(0..st.stays.len() - 1);
                    let j = rng.gen_range(i + 1..st.stays.len());
                    let (ti, tj) = (st.stays[i].time, st.stays[j].time);
                    st.stays[i].time = tj;
                    st.stays[j].time = ti;
                    touched += 1;
                }
            }
        }
        Corruption::DuplicateStays { fraction } => {
            for st in trajectories.iter_mut() {
                let mut i = 0;
                while i < st.stays.len() {
                    if rng.gen_bool(fraction) {
                        st.stays.insert(i + 1, st.stays[i]);
                        touched += 1;
                        i += 1; // do not re-roll the fresh duplicate
                    }
                    i += 1;
                }
            }
        }
        Corruption::Teleports {
            fraction,
            distance_m,
        } => {
            for st in trajectories.iter_mut() {
                for sp in &mut st.stays {
                    if rng.gen_bool(fraction) {
                        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                        sp.pos = LocalPoint::new(
                            sp.pos.x + distance_m * angle.cos(),
                            sp.pos.y + distance_m * angle.sin(),
                        );
                        touched += 1;
                    }
                }
            }
        }
        Corruption::Truncation { fraction } => {
            for st in trajectories.iter_mut() {
                if !st.stays.is_empty() && rng.gen_bool(fraction) {
                    let keep = rng.gen_range(0..st.stays.len());
                    st.stays.truncate(keep);
                    touched += 1;
                }
            }
        }
    }
    touched
}

/// Mangles a fraction of a CSV body's data lines (the first line is assumed
/// to be a header and left intact), deterministically per seed — the raw
/// counterpart of [`corrupt_trajectories`] for exercising quarantine
/// ingestion. Returns the corrupted text and how many lines were mangled.
pub fn corrupt_csv(text: &str, fraction: f64, seed: u64) -> (String, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC54F);
    let mut mangled = 0usize;
    let lines: Vec<String> = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            if i == 0 || line.trim().is_empty() || !rng.gen_bool(fraction) {
                return line.to_string();
            }
            mangled += 1;
            match rng.gen_range(0..4u32) {
                // Truncate mid-record.
                0 => line[..line.len() / 2].to_string(),
                // Replace one field with garbage.
                1 => {
                    let mut fields: Vec<&str> = line.split(',').collect();
                    let k = rng.gen_range(0..fields.len());
                    fields[k] = "garbage";
                    fields.join(",")
                }
                // Non-finite numeric.
                2 => {
                    let mut fields: Vec<&str> = line.split(',').collect();
                    let k = rng.gen_range(0..fields.len());
                    fields[k] = "NaN";
                    fields.join(",")
                }
                // Drop all but the first field.
                _ => line.split(',').next().unwrap_or("").to_string(),
            }
        })
        .collect();
    let mut out = lines.join("\n");
    if text.ends_with('\n') {
        out.push('\n');
    }
    (out, mangled)
}

/// One injectable failure mode for an opaque *byte* blob — the binary
/// counterpart of [`corrupt_csv`], aimed at stored artifacts (`pm-store`
/// files) rather than text feeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByteCorruption {
    /// A single bit flipped at a seeded position (cosmic ray, bad sector).
    BitFlip,
    /// The blob cut off after a seeded prefix (interrupted download).
    Truncate,
    /// A seeded run of bytes overwritten with pseudo-random garbage
    /// (cross-linked block, partial overwrite).
    GarbageRun,
    /// Extra garbage appended past the declared end (tar padding, partial
    /// second write).
    TrailingGarbage,
}

impl ByteCorruption {
    /// Short machine-checkable name of the failure mode.
    pub fn label(&self) -> &'static str {
        match self {
            ByteCorruption::BitFlip => "bit_flip",
            ByteCorruption::Truncate => "truncate",
            ByteCorruption::GarbageRun => "garbage_run",
            ByteCorruption::TrailingGarbage => "trailing_garbage",
        }
    }

    /// Every byte-level failure mode.
    pub fn all() -> Vec<ByteCorruption> {
        vec![
            ByteCorruption::BitFlip,
            ByteCorruption::Truncate,
            ByteCorruption::GarbageRun,
            ByteCorruption::TrailingGarbage,
        ]
    }
}

/// Applies one byte-level corruption to `bytes`, deterministically per seed,
/// and returns the damaged copy. The result is guaranteed to differ from the
/// input whenever the input is non-empty (for `Truncate`, also non-trivially
/// short), so `corrupted != original` assertions are meaningful.
pub fn corrupt_bytes(bytes: &[u8], mode: ByteCorruption, seed: u64) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB17E);
    let mut out = bytes.to_vec();
    match mode {
        ByteCorruption::BitFlip => {
            if !out.is_empty() {
                let pos = rng.gen_range(0..out.len());
                let bit = rng.gen_range(0..8u32);
                out[pos] ^= 1 << bit;
            }
        }
        ByteCorruption::Truncate => {
            if !out.is_empty() {
                let keep = rng.gen_range(0..out.len());
                out.truncate(keep);
            }
        }
        ByteCorruption::GarbageRun => {
            if !out.is_empty() {
                let start = rng.gen_range(0..out.len());
                let len = rng.gen_range(1..=64usize).min(out.len() - start);
                for b in &mut out[start..start + len] {
                    // XOR with a non-zero mask so every byte in the run
                    // actually changes.
                    *b ^= rng.gen_range(1..=255u32) as u8;
                }
            }
        }
        ByteCorruption::TrailingGarbage => {
            let extra = rng.gen_range(1..=32usize);
            for _ in 0..extra {
                out.push(rng.gen_range(0..=255u32) as u8);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::types::StayPoint;

    fn corpus() -> Vec<SemanticTrajectory> {
        (0..50)
            .map(|i| {
                let stays = (0..4)
                    .map(|k| {
                        StayPoint::untagged(
                            LocalPoint::new(i as f64 * 10.0, k as f64 * 10.0),
                            (k * 600) as i64,
                        )
                    })
                    .collect();
                SemanticTrajectory::new(stays)
            })
            .collect()
    }

    /// NaN-aware corpus equality (`assert_eq!` would fail on NaN == NaN).
    fn same(a: &[SemanticTrajectory], b: &[SemanticTrajectory]) -> bool {
        let key = |ts: &[SemanticTrajectory]| -> Vec<(u64, u64, i64)> {
            ts.iter()
                .flat_map(|st| &st.stays)
                .map(|sp| (sp.pos.x.to_bits(), sp.pos.y.to_bits(), sp.time))
                .collect()
        };
        key(a) == key(b)
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        for c in Corruption::standard_suite(0.3) {
            let mut a = corpus();
            let mut b = corpus();
            let na = corrupt_trajectories(&mut a, &c, 42);
            let nb = corrupt_trajectories(&mut b, &c, 42);
            assert_eq!(na, nb, "{}", c.label());
            assert!(same(&a, &b), "{}", c.label());
            let mut d = corpus();
            corrupt_trajectories(&mut d, &c, 43);
            assert!(!same(&a, &d), "{}: different seeds must differ", c.label());
        }
    }

    #[test]
    fn every_mode_touches_records_at_full_intensity() {
        for c in Corruption::standard_suite(1.0) {
            let mut corpus = corpus();
            let touched = corrupt_trajectories(&mut corpus, &c, 7);
            assert!(touched > 0, "{}", c.label());
        }
    }

    #[test]
    fn zero_fraction_is_a_no_op() {
        for c in Corruption::standard_suite(0.0) {
            let mut corrupted = corpus();
            assert_eq!(corrupt_trajectories(&mut corrupted, &c, 7), 0);
            assert_eq!(corrupted, corpus());
        }
    }

    #[test]
    fn non_finite_mode_produces_non_finite_points() {
        let mut corpus = corpus();
        let c = Corruption::NonFiniteCoordinates { fraction: 0.5 };
        let touched = corrupt_trajectories(&mut corpus, &c, 1);
        let bad = corpus
            .iter()
            .flat_map(|st| &st.stays)
            .filter(|sp| !(sp.pos.x.is_finite() && sp.pos.y.is_finite()))
            .count();
        assert_eq!(bad, touched);
    }

    #[test]
    fn disorder_breaks_time_order() {
        let mut corpus = corpus();
        corrupt_trajectories(
            &mut corpus,
            &Corruption::TimestampDisorder { fraction: 1.0 },
            1,
        );
        let disordered = corpus
            .iter()
            .any(|st| st.stays.windows(2).any(|w| w[0].time > w[1].time));
        assert!(disordered);
    }

    #[test]
    fn truncation_can_empty_a_trajectory() {
        let mut corpus = corpus();
        corrupt_trajectories(&mut corpus, &Corruption::Truncation { fraction: 1.0 }, 1);
        assert!(corpus.iter().any(|st| st.stays.is_empty()));
        assert!(corpus.iter().all(|st| st.stays.len() < 4));
    }

    #[test]
    fn csv_mangling_counts_lines_and_keeps_header() {
        let text = "id,lon,lat,category\n1,1.0,2.0,shop\n2,1.0,2.0,shop\n3,1.0,2.0,shop\n";
        let (out, mangled) = corrupt_csv(text, 1.0, 5);
        assert!(mangled >= 2, "got {mangled}");
        assert!(out.starts_with("id,lon,lat,category\n"));
        let (same, zero) = corrupt_csv(text, 0.0, 5);
        assert_eq!(zero, 0);
        assert_eq!(same, text);
    }

    #[test]
    fn byte_corruption_is_deterministic_and_effective() {
        let blob: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        for mode in ByteCorruption::all() {
            for seed in 0..16u64 {
                let damaged = corrupt_bytes(&blob, mode, seed);
                assert_ne!(damaged, blob, "{} seed {seed} was a no-op", mode.label());
                assert_eq!(
                    damaged,
                    corrupt_bytes(&blob, mode, seed),
                    "{} seed {seed} not deterministic",
                    mode.label()
                );
            }
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let blob = vec![0u8; 1024];
        let damaged = corrupt_bytes(&blob, ByteCorruption::BitFlip, 9);
        let flipped: u32 = blob
            .iter()
            .zip(&damaged)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn byte_corruption_handles_empty_input() {
        for mode in ByteCorruption::all() {
            let damaged = corrupt_bytes(&[], mode, 3);
            match mode {
                ByteCorruption::TrailingGarbage => assert!(!damaged.is_empty()),
                _ => assert!(damaged.is_empty()),
            }
        }
    }
}
