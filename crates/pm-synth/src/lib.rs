//! Synthetic-city data substrate.
//!
//! The paper evaluates on proprietary data: 2.2x10^7 Shanghai taxi journeys
//! (April 2015, 20% with payment-card passenger links) and 1.2x10^6 AMAP
//! POIs. Neither is publicly available, so this crate simulates the closest
//! equivalents (DESIGN.md §3 documents why the substitutions preserve the
//! evaluated behaviour):
//!
//! - [`city`]: a city model with themed districts (semantic homogeneity),
//!   multi-purpose towers (spatial homogeneity), an airport and hospitals.
//! - [`poi`]: a POI generator reproducing Table 3's category proportions.
//! - [`trips`]: a taxi-trip generator driven by a time-of-week activity
//!   schedule (weekday commutes, evening shopping, sparse weekends, airport
//!   demand, hospital visits) with Gaussian GPS noise and a 20% carded
//!   passenger subset, plus journey-to-trajectory linking.
//! - [`gps`]: raw fix-by-fix GPS probe tracks with dwell segments, so the
//!   general Definition-5 stay-point detector is exercised end-to-end.
//! - [`checkin`]: a check-in simulator with per-category sharing bias
//!   (NYC-like vs Tokyo-like profiles) — the *semantic bias* mechanism
//!   behind Table 1.
//! - [`corrupt`]: deterministic fault injection — seeded corruptions of a
//!   trajectory corpus (non-finite coordinates, timestamp disorder,
//!   duplicates, teleports, truncation) for robustness tests.
//!
//! All generators are deterministic given [`CityConfig::seed`].

pub mod checkin;
pub mod city;
pub mod config;
pub mod corrupt;
pub mod gps;
pub mod poi;
pub mod trips;

pub use checkin::{generate_checkins, Checkin, SharingProfile};
pub use city::{CityModel, District, Tower};
pub use config::CityConfig;
pub use corrupt::{corrupt_bytes, corrupt_csv, corrupt_trajectories, ByteCorruption, Corruption};
pub use gps::{generate_probe_tracks, GpsConfig, ProbeTrack};
pub use trips::{TaxiCorpus, TaxiJourney};
