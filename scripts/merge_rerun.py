#!/usr/bin/env python3
"""Replace the Fig. 12 / Fig. 14 sections of bench_output.txt with the
refreshed blocks from a re-run transcript."""
import sys

BENCH = "bench_output.txt"
RERUN = sys.argv[1] if len(sys.argv) > 1 else "/tmp/fig_rerun.txt"


def section(text: str, header: str) -> str:
    lines = text.splitlines()
    out = []
    grab = False
    for line in lines:
        if line.startswith(header):
            grab = True
        elif grab and line.startswith(("Benchmarking", "     Running", "Gnuplot")):
            break
        if grab:
            out.append(line)
    while out and not out[-1].strip():
        out.pop()
    return "\n".join(out)


def replace_section(text: str, header: str, new: str) -> str:
    lines = text.splitlines()
    out = []
    skipping = False
    replaced = False
    for line in lines:
        if line.startswith(header):
            skipping = True
            replaced = True
            out.append(new)
            continue
        if skipping and line.startswith(("Benchmarking", "     Running", "Gnuplot")):
            skipping = False
        if not skipping:
            out.append(line)
    if not replaced:
        out.append(new)
    return "\n".join(out) + "\n"


rerun = open(RERUN).read()
bench = open(BENCH).read()
for header in ("Fig. 12 —", "Fig. 14 —"):
    block = section(rerun, header)
    if block:
        bench = replace_section(bench, header, block)
        print(f"replaced: {header}")
    else:
        print(f"WARNING: no rerun block for {header}")
open(BENCH, "w").write(bench)
