#!/usr/bin/env bash
# Tier-1 verification: build, test, and lint the default workspace members
# (everything except crates/bench, which is opt-in via `cargo bench`).
# Run from anywhere; works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci.sh: all green"
