#!/usr/bin/env bash
# Tier-1 verification: format, build, test, lint, document, and perf-smoke
# the workspace (crates/bench stays out of the default build/test set; its
# smoke bench is invoked explicitly below). Run from anywhere; works fully
# offline.
set -euo pipefail

die() {
    echo "ci.sh: error: $*" >&2
    exit 1
}

command -v cargo > /dev/null 2>&1 \
    || die "cargo not found on PATH — install a Rust toolchain (rustup.rs) first"

workspace="$(cd "$(dirname "$0")/.." 2> /dev/null && pwd)" \
    || die "cannot resolve the workspace directory from $0"
[ -f "$workspace/Cargo.toml" ] \
    || die "$workspace does not look like the workspace root (no Cargo.toml)"
cd "$workspace"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

# The pipeline must be bit-deterministic across thread counts (DESIGN.md §9):
# run the whole suite serially and again with the 4-worker default, so every
# test — not just the dedicated parity ones — exercises both schedules.
for threads in 1 4; do
    echo "==> cargo test -q (PM_THREADS=$threads)"
    PM_THREADS=$threads cargo test -q
done

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

# Perf smoke: the whole-pipeline bench in quick mode (seconds, not minutes).
# Its BENCH_pipeline.json is the per-commit performance record CI archives.
# Cargo runs bench binaries from the package directory, so pin the output
# to the workspace root explicitly.
echo "==> cargo bench -p pm-bench --bench pipeline (PM_BENCH_SMOKE=1)"
PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench pipeline
[ -s BENCH_pipeline.json ] \
    || die "bench smoke did not write BENCH_pipeline.json"

echo "==> ci.sh: all green"
