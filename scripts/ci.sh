#!/usr/bin/env bash
# Tier-1 verification: format, build, test, lint, document, and perf-smoke
# the workspace (crates/bench stays out of the default build/test set; its
# smoke bench is invoked explicitly below). Run from anywhere; works fully
# offline.
set -euo pipefail

die() {
    echo "ci.sh: error: $*" >&2
    exit 1
}

command -v cargo > /dev/null 2>&1 \
    || die "cargo not found on PATH — install a Rust toolchain (rustup.rs) first"

workspace="$(cd "$(dirname "$0")/.." 2> /dev/null && pwd)" \
    || die "cannot resolve the workspace directory from $0"
[ -f "$workspace/Cargo.toml" ] \
    || die "$workspace does not look like the workspace root (no Cargo.toml)"
cd "$workspace"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

# The pipeline must be bit-deterministic across thread counts (DESIGN.md §9):
# run the whole suite serially and again with the 4-worker default, so every
# test — not just the dedicated parity ones — exercises both schedules.
for threads in 1 4; do
    echo "==> cargo test -q (PM_THREADS=$threads)"
    PM_THREADS=$threads cargo test -q
done

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

# Perf smoke: the whole-pipeline bench in quick mode (seconds, not minutes).
# Its BENCH_pipeline.json is the per-commit performance record CI archives.
# Cargo runs bench binaries from the package directory, so pin the output
# to the workspace root explicitly.
echo "==> cargo bench -p pm-bench --bench pipeline (PM_BENCH_SMOKE=1)"
PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench pipeline
[ -s BENCH_pipeline.json ] \
    || die "bench smoke did not write BENCH_pipeline.json"

# Serve smoke: loopback request latencies, spliced into the same report.
echo "==> cargo bench -p pm-bench --bench serve_latency (PM_BENCH_SMOKE=1)"
PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench serve_latency
grep -q '"serve"' BENCH_pipeline.json \
    || die "serve bench did not splice into BENCH_pipeline.json"

# Ingest smoke: streaming fixes through POST /v1/ingest, same report.
echo "==> cargo bench -p pm-bench --bench ingest_throughput (PM_BENCH_SMOKE=1)"
PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench ingest_throughput
grep -q '"ingest"' BENCH_pipeline.json \
    || die "ingest bench did not splice into BENCH_pipeline.json"

# Artifact round trip: mine the committed example data into a pm-store
# artifact, then prove it reloads and re-serializes byte-identically.
echo "==> artifact round trip (mine --artifact + artifact-check)"
artifact="$workspace/target/ci-city.pmstore"
rm -f "$artifact"
cargo run --release -q -p pm-cli -- mine \
    --pois examples/data/pois.csv --journeys examples/data/journeys.csv \
    --lenient --sigma 20 --top 0 --artifact "$artifact" > /dev/null
[ -s "$artifact" ] || die "mine --artifact wrote nothing"
cargo run --release -q -p pm-cli -- artifact-check "$artifact"

# Serve smoke test: boot the query service on an ephemeral port, hit it
# with curl, and shut it down cleanly. Skipped when curl is unavailable.
if command -v curl > /dev/null 2>&1; then
    echo "==> serve smoke test (ephemeral port + curl)"
    serve_log="$workspace/target/ci-serve.log"
    cargo run --release -q -p pm-cli -- serve \
        --artifact "$artifact" --addr 127.0.0.1:0 2> "$serve_log" &
    serve_pid=$!
    trap 'kill "$serve_pid" 2> /dev/null || true' EXIT
    addr=""
    for _ in $(seq 1 50); do
        addr="$(sed -n 's/^listening on //p' "$serve_log")"
        [ -n "$addr" ] && break
        kill -0 "$serve_pid" 2> /dev/null || die "serve exited: $(cat "$serve_log")"
        sleep 0.1
    done
    [ -n "$addr" ] || die "serve never announced its address: $(cat "$serve_log")"
    curl -fsS "http://$addr/healthz" | grep -q '"status":"ok"' \
        || die "healthz did not answer ok"
    curl -fsS "http://$addr/v1/semantic?lon=121.4737&lat=31.2304" \
        | grep -q '"query"' || die "semantic lookup failed"
    curl -fsS "http://$addr/v1/patterns?limit=3" | grep -q '"total"' \
        || die "pattern query failed"

    # Ingest smoke: replay the committed journeys against the live server
    # (throttled so it is still running when the reload lands), hot-swap
    # the snapshot mid-replay, and check the live window filled up.
    echo "==> ingest smoke test (replay + mid-replay /v1/reload)"
    cargo run --release -q -p pm-cli -- replay \
        --journeys examples/data/journeys.csv --addr "$addr" --rate 4000 \
        2> "$workspace/target/ci-replay.log" &
    replay_pid=$!
    sleep 0.3
    curl -fsS -X POST "http://$addr/v1/reload" -d '{}' | grep -q '"epoch":1' \
        || die "mid-replay reload did not swap to epoch 1"
    wait "$replay_pid" \
        || die "replay failed: $(cat "$workspace/target/ci-replay.log")"
    curl -fsS "http://$addr/v1/live/patterns" | grep -q '"from":' \
        || die "live patterns stayed empty after replay"
    curl -fsS "http://$addr/v1/stats" | grep -q '"serve.swap_epoch": 1' \
        || die "epoch swap not visible in the run-report counters"
    kill "$serve_pid"
    wait "$serve_pid" 2> /dev/null || true
    trap - EXIT
    echo "    serve answered on $addr and shut down cleanly"
else
    echo "==> serve smoke test skipped (curl not found)"
fi

echo "==> ci.sh: all green"
