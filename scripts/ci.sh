#!/usr/bin/env bash
# Tier-1 verification: format, build, test, lint, document, and perf-smoke
# the workspace (crates/bench stays out of the default build/test set; its
# smoke bench is invoked explicitly below). Run from anywhere; works fully
# offline.
set -euo pipefail

die() {
    echo "ci.sh: error: $*" >&2
    exit 1
}

command -v cargo > /dev/null 2>&1 \
    || die "cargo not found on PATH — install a Rust toolchain (rustup.rs) first"

workspace="$(cd "$(dirname "$0")/.." 2> /dev/null && pwd)" \
    || die "cannot resolve the workspace directory from $0"
[ -f "$workspace/Cargo.toml" ] \
    || die "$workspace does not look like the workspace root (no Cargo.toml)"
cd "$workspace"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

# The pipeline must be bit-deterministic across thread counts (DESIGN.md §9):
# run the whole suite serially and again with the 4-worker default, so every
# test — not just the dedicated parity ones — exercises both schedules.
for threads in 1 4; do
    echo "==> cargo test -q (PM_THREADS=$threads)"
    PM_THREADS=$threads cargo test -q
done

# The online path must likewise be shard-count independent (DESIGN.md §15):
# the stream, serve, and motif suites run once inline (PM_SHARDS=1) and once
# fanned across 8 user-keyed shards, so every ingest/serve/live-motif test —
# not just the dedicated parity ones — exercises both layouts.
for shards in 1 8; do
    echo "==> cargo test -q -p pm-stream -p pm-serve -p pm-motif (PM_SHARDS=$shards)"
    PM_SHARDS=$shards cargo test -q -p pm-stream -p pm-serve -p pm-motif
done

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

# --- Bench metric plumbing ---------------------------------------------------
# Reads one metric out of a BENCH_pipeline.json document as real JSON (the
# old line-anchored sed broke the moment the emitter reflowed a line, and
# broke *silently* — the comparison just vanished). Selectors:
#   bench_metric FILE stages NAME FIELD   -> .stages[name == NAME].FIELD
#   bench_metric FILE serve  NAME FIELD   -> .serve.endpoints[name == NAME].FIELD
#   bench_metric FILE SECTION -    FIELD  -> .SECTION.FIELD
# Prints the value; returns non-zero (with a stderr diagnostic) when the
# document is unreadable or the path is absent.
bench_metric() {
    python3 - "$1" "$2" "$3" "$4" <<'PY'
import json, sys
path, section, name, field = sys.argv[1:5]
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"bench_metric: {path}: unreadable JSON: {e}", file=sys.stderr)
    sys.exit(2)
try:
    if section == "stages":
        value = next(s[field] for s in doc["stages"] if s.get("name") == name)
    elif section == "serve":
        value = next(e[field] for e in doc["serve"]["endpoints"] if e.get("name") == name)
    else:
        value = doc[section][field]
except (KeyError, StopIteration, TypeError):
    print(f"bench_metric: {path}: no {section}/{name}/{field}", file=sys.stderr)
    sys.exit(3)
print(value)
PY
}

# The committed report is the baseline; materialize it BEFORE the benches
# overwrite the working copy. A missing python3 disables every comparison
# below — loudly, not silently.
baseline_json="$workspace/target/ci-bench-baseline.json"
mkdir -p "$workspace/target"
have_baseline=0
if ! command -v python3 > /dev/null 2>&1; then
    echo "ci.sh: WARNING: python3 not found — bench baseline comparisons disabled" >&2
elif git show HEAD:BENCH_pipeline.json > "$baseline_json" 2> /dev/null; then
    have_baseline=1
else
    echo "    no committed BENCH_pipeline.json at HEAD — baseline comparisons skipped"
fi

# Baseline metrics up front, so a malformed committed report dies here with
# a diagnostic instead of quietly skipping the regression guards.
if [ "$have_baseline" = 1 ]; then
    baseline_extract="$(bench_metric "$baseline_json" stages extract median_ms)" \
        || die "committed BENCH_pipeline.json lacks the extract stage median — \
rerun 'cargo bench -p pm-bench --bench pipeline' and commit the report"
    baseline_ingest="$(bench_metric "$baseline_json" ingest - fixes_per_sec)" \
        || die "committed BENCH_pipeline.json lacks ingest fixes_per_sec — \
rerun 'cargo bench -p pm-bench --bench ingest_throughput' and commit the report"
fi

# Perf smoke: the whole-pipeline bench in quick mode (seconds, not minutes).
# Its BENCH_pipeline.json is the per-commit performance record CI archives.
# Cargo runs bench binaries from the package directory, so pin the output
# to the workspace root explicitly.
echo "==> cargo bench -p pm-bench --bench pipeline (PM_BENCH_SMOKE=1)"
# PM_BENCH_FULL is pinned off here: full mode takes precedence inside the
# bench, and a CI environment exporting PM_BENCH_FULL=1 must not turn the
# smoke run into a second full run (the gated step below handles full).
PM_BENCH_FULL=0 PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench pipeline
grep -q '"mode": "smoke"' BENCH_pipeline.json \
    || die "bench smoke did not write smoke stages to BENCH_pipeline.json"

# Perf regression guard. Warning only — never a failure: CI runners are
# shared and noisy, and a red build over a timing blip would teach people
# to ignore red builds. A real regression shows up as the warning
# persisting across commits.
if [ "$have_baseline" = 1 ]; then
    new_extract="$(bench_metric BENCH_pipeline.json stages extract median_ms)" \
        || die "pipeline bench wrote no extract stage median to BENCH_pipeline.json"
    if awk -v n="$new_extract" -v b="$baseline_extract" 'BEGIN { exit !(n > b * 1.2) }'; then
        echo "ci.sh: WARNING: smoke extract median $new_extract ms is >20% slower" \
            "than the committed baseline $baseline_extract ms" >&2
    else
        echo "    extract median $new_extract ms (committed baseline $baseline_extract ms)"
    fi
fi

# Serve smoke: loopback request latencies, spliced into the same report.
echo "==> cargo bench -p pm-bench --bench serve_latency (PM_BENCH_SMOKE=1)"
PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench serve_latency
grep -q '"serve"' BENCH_pipeline.json \
    || die "serve bench did not splice into BENCH_pipeline.json"

# Ingest smoke: streaming fixes through POST /v1/ingest, same report.
echo "==> cargo bench -p pm-bench --bench ingest_throughput (PM_BENCH_SMOKE=1)"
PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench ingest_throughput
grep -q '"ingest"' BENCH_pipeline.json \
    || die "ingest bench did not splice into BENCH_pipeline.json"

# Throughput regression guard for the streaming path — non-fatal, like the
# extract guard above (higher is better here, so the alarm is a *drop*).
if [ "$have_baseline" = 1 ]; then
    new_ingest="$(bench_metric BENCH_pipeline.json ingest - fixes_per_sec)" \
        || die "ingest bench wrote no fixes_per_sec to BENCH_pipeline.json"
    if awk -v n="$new_ingest" -v b="$baseline_ingest" 'BEGIN { exit !(n < b * 0.8) }'; then
        echo "ci.sh: WARNING: smoke ingest throughput $new_ingest fixes/s is >20% below" \
            "the committed baseline $baseline_ingest fixes/s" >&2
    else
        echo "    ingest $new_ingest fixes/s (committed baseline $baseline_ingest fixes/s)"
    fi
fi

# Motif smoke: batch motif mining (day graphs -> canonical forms -> ranked
# table), spliced into the same report.
echo "==> cargo bench -p pm-bench --bench motif_bench (PM_BENCH_SMOKE=1)"
PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench motif_bench
grep -q '"motifs"' BENCH_pipeline.json \
    || die "motif bench did not splice into BENCH_pipeline.json"

# Cohort smoke: per-user embedding, cohort clustering, and similar-user
# queries (pruned cohort scope vs exact scan), spliced into the same report.
echo "==> cargo bench -p pm-bench --bench cohort_bench (PM_BENCH_SMOKE=1)"
PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench cohort_bench
grep -q '"cohorts"' BENCH_pipeline.json \
    || die "cohort bench did not splice into BENCH_pipeline.json"

# Loadgen smoke: the sharded-ingest load generator (shards=8), spliced into
# the same report. The committed loadgen section is the full 1M-user run,
# so no smoke-vs-full delta is computed — the ingest guard above covers
# throughput regressions at matched scale.
echo "==> cargo bench -p pm-bench --bench loadgen (PM_BENCH_SMOKE=1)"
PM_BENCH_SMOKE=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
    cargo bench -p pm-bench --bench loadgen
grep -q '"loadgen"' BENCH_pipeline.json \
    || die "loadgen bench did not splice into BENCH_pipeline.json"

# Bench comparison table — markdown for the GitHub Actions step summary
# when running under Actions, plain stdout otherwise. Latencies alarm when
# slower than baseline; throughputs when faster is *lost*.
if [ "$have_baseline" = 1 ]; then
    summary_table() {
        echo ""
        echo "### Bench smoke vs committed baseline"
        echo ""
        echo "| metric | baseline | current | delta |"
        echo "|---|---:|---:|---:|"
        # metric selector-args unit direction
        for row in \
            "construct (csd_build)|stages csd_build median_ms|ms|lower" \
            "recognize|stages recognize median_ms|ms|lower" \
            "extract|stages extract median_ms|ms|lower" \
            "serve /v1/patterns|serve patterns median_ms|ms|lower" \
            "ingest|ingest - fixes_per_sec|fixes/s|higher" \
            "motif mining|motifs - build_ms|ms|lower" \
            "cohort clustering|cohorts - cluster_ms|ms|lower" \
            "similar query p50 (cohort scope)|cohorts - cohort_scope_p50_ms|ms|lower"; do
            label="${row%%|*}"
            rest="${row#*|}"
            selector="${rest%%|*}"
            rest="${rest#*|}"
            unit="${rest%%|*}"
            direction="${rest#*|}"
            # shellcheck disable=SC2086 # selector is a fixed 3-word list
            old="$(bench_metric "$baseline_json" $selector 2> /dev/null)" || old=""
            # shellcheck disable=SC2086
            new="$(bench_metric BENCH_pipeline.json $selector 2> /dev/null)" || new=""
            if [ -n "$old" ] && [ -n "$new" ]; then
                delta="$(awk -v n="$new" -v b="$old" -v dir="$direction" 'BEGIN {
                    if (b == 0) { print "n/a"; exit }
                    pct = (n - b) / b * 100
                    worse = (dir == "lower") ? (pct > 0) : (pct < 0)
                    printf "%s%.1f%%%s", (pct >= 0 ? "+" : ""), pct, (worse ? " ⚠" : "")
                }')"
                echo "| $label | $old $unit | $new $unit | $delta |"
            else
                echo "| $label | n/a | ${new:-n/a} $unit | n/a |"
            fi
        done
        echo ""
    }
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        summary_table >> "$GITHUB_STEP_SUMMARY"
        echo "    bench comparison table written to the Actions step summary"
    else
        summary_table
    fi
fi

# Full-scale pipeline section: evaluation-scale stage medians spliced into
# the same report, so the per-commit record tracks both scales. Minutes,
# not seconds — opt-in via PM_BENCH_FULL=1 (the CI workflow sets it).
if [ "${PM_BENCH_FULL:-0}" = "1" ]; then
    echo "==> cargo bench -p pm-bench --bench pipeline (PM_BENCH_FULL=1)"
    PM_BENCH_FULL=1 PM_BENCH_OUT="$workspace/BENCH_pipeline.json" \
        cargo bench -p pm-bench --bench pipeline
    grep -q '"full"' BENCH_pipeline.json \
        || die "full-mode bench did not splice into BENCH_pipeline.json"
else
    echo "==> full-scale pipeline bench skipped (set PM_BENCH_FULL=1 to run)"
fi

# Artifact round trip: mine the committed example data into a pm-store
# artifact, then prove it reloads and re-serializes byte-identically.
echo "==> artifact round trip (mine --artifact + artifact-check)"
artifact="$workspace/target/ci-city.pmstore"
rm -f "$artifact"
cargo run --release -q -p pm-cli -- mine \
    --pois examples/data/pois.csv --journeys examples/data/journeys.csv \
    --lenient --sigma 20 --top 0 --artifact "$artifact" > /dev/null
[ -s "$artifact" ] || die "mine --artifact wrote nothing"
cargo run --release -q -p pm-cli -- artifact-check "$artifact"

# Motif mining: run the motifs command twice over the same corpus and
# demand byte-identical reports, then prove the motif-bearing artifact
# still round-trips. The serve smoke below boots from this artifact, so
# /v1/motifs answers from a real table.
echo "==> motif mining (motifs command, determinism + round trip)"
cargo run --release -q -p pm-cli -- motifs \
    --artifact "$artifact" --journeys examples/data/journeys.csv --lenient \
    > "$workspace/target/ci-motifs-1.txt"
cargo run --release -q -p pm-cli -- motifs \
    --artifact "$artifact" --journeys examples/data/journeys.csv --lenient \
    > "$workspace/target/ci-motifs-2.txt"
cmp -s "$workspace/target/ci-motifs-1.txt" "$workspace/target/ci-motifs-2.txt" \
    || die "motifs output differs across identical runs"
grep -q 'motif classes over' "$workspace/target/ci-motifs-1.txt" \
    || die "motifs mined no classes"
cargo run --release -q -p pm-cli -- artifact-check "$artifact"

# Cohort mining: run the cohorts command twice over the same corpus and
# demand byte-identical stdout AND a byte-identical artifact on disk, then
# prove the (motif + cohort)-bearing artifact still round-trips and
# reports both optional sections. The serve smoke below boots from this
# artifact, so the cohort endpoints answer from a real table.
echo "==> cohort mining (cohorts command, determinism + round trip)"
cargo run --release -q -p pm-cli -- cohorts \
    --artifact "$artifact" --journeys examples/data/journeys.csv --lenient \
    > "$workspace/target/ci-cohorts-1.txt"
cp "$artifact" "$workspace/target/ci-city-cohorts-1.pmstore"
cargo run --release -q -p pm-cli -- cohorts \
    --artifact "$artifact" --journeys examples/data/journeys.csv --lenient \
    > "$workspace/target/ci-cohorts-2.txt"
cmp -s "$workspace/target/ci-cohorts-1.txt" "$workspace/target/ci-cohorts-2.txt" \
    || die "cohorts output differs across identical runs"
cmp -s "$artifact" "$workspace/target/ci-city-cohorts-1.pmstore" \
    || die "cohort-bearing artifact differs across identical runs"
grep -q 'users in' "$workspace/target/ci-cohorts-1.txt" \
    || die "cohorts mined no users"
cargo run --release -q -p pm-cli -- artifact-check "$artifact" \
    | grep -q 'optional sections: motifs, cohorts' \
    || die "artifact-check does not report both optional sections"

# Serve smoke test: boot the query service on an ephemeral port, hit it
# with curl, and shut it down cleanly. Skipped when curl is unavailable.
if command -v curl > /dev/null 2>&1; then
    echo "==> serve smoke test (ephemeral port + curl)"
    serve_log="$workspace/target/ci-serve.log"
    cargo run --release -q -p pm-cli -- serve \
        --artifact "$artifact" --addr 127.0.0.1:0 2> "$serve_log" &
    serve_pid=$!
    trap 'kill "$serve_pid" 2> /dev/null || true' EXIT
    addr=""
    for _ in $(seq 1 50); do
        addr="$(sed -n 's/^listening on //p' "$serve_log")"
        [ -n "$addr" ] && break
        kill -0 "$serve_pid" 2> /dev/null || die "serve exited: $(cat "$serve_log")"
        sleep 0.1
    done
    [ -n "$addr" ] || die "serve never announced its address: $(cat "$serve_log")"
    curl -fsS "http://$addr/healthz" | grep -q '"status":"ok"' \
        || die "healthz did not answer ok"
    curl -fsS "http://$addr/v1/semantic?lon=121.4737&lat=31.2304" \
        | grep -q '"query"' || die "semantic lookup failed"
    curl -fsS "http://$addr/v1/patterns?limit=3" | grep -q '"total"' \
        || die "pattern query failed"
    curl -fsS "http://$addr/v1/motifs?top=5" > "$workspace/target/ci-motifs-a.json"
    grep -q '"total_days"' "$workspace/target/ci-motifs-a.json" \
        || die "motif query failed"
    curl -fsS "http://$addr/v1/motifs?top=5" > "$workspace/target/ci-motifs-b.json"
    cmp -s "$workspace/target/ci-motifs-a.json" "$workspace/target/ci-motifs-b.json" \
        || die "motif responses differ across identical queries"

    # Cohort endpoints: deterministic bodies from the cohort-bearing
    # artifact, double-fetched, plus the per-user index on a real user id
    # taken from the cohorts command output.
    curl -fsS "http://$addr/v1/cohorts" > "$workspace/target/ci-cohorts-a.json"
    grep -q '"k_min"' "$workspace/target/ci-cohorts-a.json" \
        || die "cohort query failed"
    curl -fsS "http://$addr/v1/cohorts" > "$workspace/target/ci-cohorts-b.json"
    cmp -s "$workspace/target/ci-cohorts-a.json" "$workspace/target/ci-cohorts-b.json" \
        || die "cohort responses differ across identical queries"
    cohort_user="$(sed -n 's/^  user \([^ ]*\).*/\1/p' \
        "$workspace/target/ci-cohorts-1.txt" | head -1)"
    [ -n "$cohort_user" ] || die "cohorts output listed no users"
    curl -fsS "http://$addr/v1/users/$cohort_user/patterns" \
        | grep -q '"cohort"' || die "user pattern query failed"
    curl -fsS "http://$addr/v1/users/$cohort_user/similar?k=5" \
        > "$workspace/target/ci-similar-a.json"
    grep -q '"neighbors"' "$workspace/target/ci-similar-a.json" \
        || die "similar-user query failed"
    curl -fsS "http://$addr/v1/users/$cohort_user/similar?k=5" \
        > "$workspace/target/ci-similar-b.json"
    cmp -s "$workspace/target/ci-similar-a.json" "$workspace/target/ci-similar-b.json" \
        || die "similar-user responses differ across identical queries"

    # Ingest smoke: replay the committed journeys against the live server
    # (throttled so it is still running when the reload lands), hot-swap
    # the snapshot mid-replay, and check the live window filled up.
    echo "==> ingest smoke test (replay + mid-replay /v1/reload)"
    cargo run --release -q -p pm-cli -- replay \
        --journeys examples/data/journeys.csv --addr "$addr" --rate 4000 \
        2> "$workspace/target/ci-replay.log" &
    replay_pid=$!
    sleep 0.3
    curl -fsS -X POST "http://$addr/v1/reload" -d '{}' | grep -q '"epoch":1' \
        || die "mid-replay reload did not swap to epoch 1"
    wait "$replay_pid" \
        || die "replay failed: $(cat "$workspace/target/ci-replay.log")"
    curl -fsS "http://$addr/v1/live/patterns" | grep -q '"from":' \
        || die "live patterns stayed empty after replay"
    curl -fsS "http://$addr/v1/live/motifs" | grep -q '"window_days":7' \
        || die "live motifs endpoint failed"
    curl -fsS "http://$addr/v1/stats" | grep -q '"serve.swap_epoch": 1' \
        || die "epoch swap not visible in the run-report counters"
    kill "$serve_pid"
    wait "$serve_pid" 2> /dev/null || true
    trap - EXIT
    echo "    serve answered on $addr and shut down cleanly"

    # Crash-recovery smoke: a WAL-backed server killed with -9 mid-replay
    # must recover on restart from the same --wal-dir, and a full re-send
    # of the journey file must converge byte-for-byte on what an
    # uninterrupted server serves (per-user ordering clocks make re-sent
    # records idempotent). Then the background re-miner has to publish a
    # verified generation, and SIGTERM has to drain cleanly with a final
    # checkpoint (the next boot replays zero batches).
    echo "==> crash-recovery smoke (kill -9 mid-replay + WAL restart)"
    bin="$workspace/target/release/pervasive-miner"
    [ -x "$bin" ] || die "release binary missing at $bin"
    wal_dir="$workspace/target/ci-wal"
    gen_dir="$workspace/target/ci-generations"
    rm -rf "$wal_dir" "$gen_dir"

    # Boots the release binary directly (not via cargo run, so kill -9
    # reaches the server itself) and waits for the announced address.
    boot_serve() {
        local log="$1"
        shift
        "$bin" serve --artifact "$artifact" --addr 127.0.0.1:0 "$@" 2> "$log" &
        serve_pid=$!
        trap 'kill -9 "$serve_pid" 2> /dev/null || true' EXIT
        addr=""
        for _ in $(seq 1 100); do
            addr="$(sed -n 's/^listening on //p' "$log")"
            [ -n "$addr" ] && break
            kill -0 "$serve_pid" 2> /dev/null || die "serve exited: $(cat "$log")"
            sleep 0.1
        done
        [ -n "$addr" ] || die "serve never announced its address: $(cat "$log")"
    }

    # Baseline: an uninterrupted server sees the full journey file once.
    boot_serve "$workspace/target/ci-baseline.log"
    "$bin" replay --journeys examples/data/journeys.csv --addr "$addr" \
        2> /dev/null || die "baseline replay failed"
    baseline="$(curl -fsS "http://$addr/v1/live/patterns")"
    kill -9 "$serve_pid" 2> /dev/null || true
    wait "$serve_pid" 2> /dev/null || true

    # Crash run: same data into a WAL-backed server, killed mid-replay.
    boot_serve "$workspace/target/ci-crash.log" --wal-dir "$wal_dir"
    "$bin" replay --journeys examples/data/journeys.csv --addr "$addr" \
        --rate 2000 2> /dev/null &
    replay_pid=$!
    sleep 1
    kill -0 "$replay_pid" 2> /dev/null || die "replay finished before the crash"
    kill -9 "$serve_pid" 2> /dev/null || die "server died before the crash"
    wait "$replay_pid" 2> /dev/null || true # replay dies with its server

    # Restart on the same WAL, then re-send the WHOLE file: recovery plus
    # the idempotent re-send must land exactly on the baseline.
    boot_serve "$workspace/target/ci-recover.log" --wal-dir "$wal_dir"
    grep -q 'recovered' "$workspace/target/ci-recover.log" \
        || die "restart did not report WAL recovery: $(cat "$workspace/target/ci-recover.log")"
    "$bin" replay --journeys examples/data/journeys.csv --addr "$addr" \
        2> /dev/null || die "post-recovery replay failed"
    recovered="$(curl -fsS "http://$addr/v1/live/patterns")"
    [ "$recovered" = "$baseline" ] || die "live patterns diverged after crash recovery
baseline:  $baseline
recovered: $recovered"

    # Graceful shutdown: SIGTERM drains and cuts a final checkpoint.
    kill -TERM "$serve_pid"
    for _ in $(seq 1 100); do
        kill -0 "$serve_pid" 2> /dev/null || break
        sleep 0.1
    done
    kill -0 "$serve_pid" 2> /dev/null && die "server ignored SIGTERM"
    wait "$serve_pid" 2> /dev/null || true
    grep -q 'server stopped' "$workspace/target/ci-recover.log" \
        || die "no clean-shutdown message after SIGTERM"

    # Final boot proves the shutdown checkpoint covered everything (zero
    # batches to replay) and lets the re-miner publish a generation from
    # the recovered stay buffer; its status JSON is archived by CI.
    boot_serve "$workspace/target/ci-remine.log" --wal-dir "$wal_dir" \
        --remine-interval 1 --remine-dir "$gen_dir"
    grep -q 'replayed 0 batches / 0 records' "$workspace/target/ci-remine.log" \
        || die "graceful shutdown left batches to replay: $(cat "$workspace/target/ci-remine.log")"
    for _ in $(seq 1 240); do
        curl -fsS "http://$addr/v1/miner" > "$workspace/miner-status.json" || true
        grep -Eq '"jobs_succeeded":[1-9]' "$workspace/miner-status.json" && break
        kill -0 "$serve_pid" 2> /dev/null || die "re-mining server died: $(cat "$workspace/target/ci-remine.log")"
        sleep 0.5
    done
    grep -Eq '"jobs_succeeded":[1-9]' "$workspace/miner-status.json" \
        || die "re-miner never published a generation: $(cat "$workspace/miner-status.json")"
    newest_gen="$(ls "$gen_dir" | grep '^gen-' | sort | tail -1)"
    [ -n "$newest_gen" ] || die "no generation files in $gen_dir"
    "$bin" artifact-check "$gen_dir/$newest_gen" > /dev/null \
        || die "published generation failed verification"
    kill -TERM "$serve_pid"
    wait "$serve_pid" 2> /dev/null || true
    trap - EXIT
    echo "    crash recovery converged, re-miner published $newest_gen, SIGTERM drained cleanly"
else
    echo "==> serve smoke test skipped (curl not found)"
fi

echo "==> ci.sh: all green"
