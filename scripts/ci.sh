#!/usr/bin/env bash
# Tier-1 verification: build, test, and lint the default workspace members
# (everything except crates/bench, which is opt-in via `cargo bench` —
# e.g. `cargo bench --bench scaling` or `--bench scaling_threads`).
# Run from anywhere; works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

# The pipeline must be bit-deterministic across thread counts (DESIGN.md §9):
# run the whole suite serially and again with the 4-worker default, so every
# test — not just the dedicated parity ones — exercises both schedules.
echo "==> cargo test -q (PM_THREADS=1)"
PM_THREADS=1 cargo test -q

echo "==> cargo test -q (PM_THREADS=4)"
PM_THREADS=4 cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci.sh: all green"
