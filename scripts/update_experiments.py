#!/usr/bin/env python3
"""Refresh EXPERIMENTS.md from bench_output.txt.

Extracts every regenerated table/figure block the benches print (they all
start with a recognizable header line) and splices them into EXPERIMENTS.md
between the `<!-- RESULTS -->` marker and the `## Caveats` section.
"""
import re
import sys

BENCH = "bench_output.txt"
DOC = "EXPERIMENTS.md"

HEADERS = [
    "Table 1 —",
    "Table 3 —",
    "Fig. 6 —",
    "Fig. 9 —",
    "Fig. 10 —",
    "Fig. 11 —",
    "Fig. 12 —",
    "Fig. 13 —",
    "Fig. 14 —",
    "Ablation —",
]


def extract_blocks(text: str):
    lines = text.splitlines()
    blocks = []
    i = 0
    while i < len(lines):
        if any(lines[i].startswith(h) for h in HEADERS):
            block = [lines[i]]
            i += 1
            while i < len(lines):
                line = lines[i]
                if any(line.startswith(h) for h in HEADERS):
                    break
                if line.startswith(
                    ("Benchmarking", "Gnuplot", "     Running", "warning", "    Finished")
                ):
                    break
                block.append(line)
                i += 1
            while block and not block[-1].strip():
                block.pop()
            blocks.append("\n".join(block))
        else:
            i += 1
    return blocks


def main():
    bench = open(BENCH).read()
    blocks = extract_blocks(bench)
    if not blocks:
        sys.exit("no result blocks found in bench_output.txt")

    def key(block):
        head = block.splitlines()[0]
        match = re.match(r"(Table|Fig\.|Ablation)\s*(\d+)?", head)
        kind = {"Table": 0, "Fig.": 1, "Ablation": 2}[match.group(1)]
        num = int(match.group(2)) if match.group(2) else 99
        return (kind, num)

    seen = set()
    unique = []
    for block in sorted(blocks, key=key):
        head = block.splitlines()[0]
        if head not in seen:
            seen.add(head)
            unique.append(block)

    body = "\n\n".join(f"```text\n{b}\n```" for b in unique)
    doc = open(DOC).read()
    new = re.sub(
        r"<!-- RESULTS -->.*?(?=## Caveats)",
        f"<!-- RESULTS -->\n\n## Regenerated results\n\n{body}\n\n",
        doc,
        flags=re.S,
    )
    open(DOC, "w").write(new)
    print(f"spliced {len(unique)} result blocks into {DOC}")


if __name__ == "__main__":
    main()
