//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of the criterion API for the workspace's benches
//! to compile and run without network access: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints the median, min, and max
//! time per iteration. There is no statistical analysis, no HTML report,
//! and no baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Names one benchmark within a group, e.g. `csd_build/10000`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where benchmark names are taken.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times one closure; handed to the benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    n_samples: usize,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also calibrates how many iterations fit one sample.
        let warm_start = Instant::now();
        black_box(routine());
        let one = warm_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        self.iters_per_sample = (target.as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;

        for _ in 0..self.n_samples.max(1) {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, bencher: &Bencher) {
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let fmt = |ns: f64| -> String {
        if ns < 1_000.0 {
            format!("{ns:.1} ns")
        } else if ns < 1_000_000.0 {
            format!("{:.2} µs", ns / 1_000.0)
        } else if ns < 1_000_000_000.0 {
            format!("{:.2} ms", ns / 1_000_000.0)
        } else {
            format!("{:.2} s", ns / 1_000_000_000.0)
        }
    };
    println!(
        "{name:<40} median {} (min {}, max {}, {} samples)",
        fmt(median),
        fmt(per_iter[0]),
        fmt(per_iter[per_iter.len() - 1]),
        per_iter.len()
    );
}

/// Top-level benchmark harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::new(),
            n_samples: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut b);
        report(&name, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher {
            samples: Vec::new(),
            n_samples: samples,
            iters_per_sample: 1,
        };
        f(&mut b);
        report(&name, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Declares a function that runs the given benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_compose_names() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
