//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher used
//! as a deterministic RNG, exposing only [`ChaCha8Rng`].
//!
//! The keystream is the real ChaCha construction (RFC 8439 quarter-rounds, 8
//! rounds, 64-byte blocks, little-endian word output), so seeded streams are
//! high-quality and stable across platforms. The word-level output order
//! matches the upstream crate's `next_u32` traversal of each block.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded by a 256-bit key; stream id and counter
/// start at zero.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // A double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12..16 (counter + nonce) stay zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn keystream_survives_block_boundaries() {
        // 16 words per block: word 16 must come from a fresh block, and the
        // counter increment must change the output.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x = rng.gen_range(0..10usize);
        assert!(x < 10);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
