//! Offline stand-in for the `proptest` crate.
//!
//! The sandboxed build environment cannot fetch crates, so this in-tree shim
//! implements the subset of proptest the workspace's test suites use:
//!
//! - the [`Strategy`](crate::strategy::Strategy) trait with `prop_map`, implemented for numeric ranges
//!   and tuples of strategies;
//! - `prop::collection::vec` with exact or ranged sizes;
//! - the `proptest!` macro (including `#![proptest_config(..)]`) and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from real proptest, deliberately accepted: inputs are drawn
//! from a deterministic per-test RNG (seeded from the test name, so runs are
//! reproducible), and failing cases are **not shrunk** — the failure message
//! reports the case number and the assertion text instead. Regression files
//! (`*.proptest-regressions`) are ignored.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! `prop::collection` equivalent: strategies for collections.
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

/// The `prop::` paths used by `use proptest::prelude::*` consumers.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items, each carrying its own
/// attributes (`#[test]`, doc comments, ...).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(config, stringify!($name), |__pt_rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __pt_rng);
                    )+
                    let __pt_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __pt_result
                });
            }
        )*
    };
}

/// Skips the current test case (without failing) when the condition is
/// false. Unlike real proptest the skipped case is not replaced by a fresh
/// draw, so heavy rejection thins the effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Fails the current test case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l == *__pt_r,
            "assertion failed: `{:?}` == `{:?}`",
            __pt_l,
            __pt_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(*__pt_l == *__pt_r, $($fmt)+);
    }};
}

/// Fails the current test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l != *__pt_r,
            "assertion failed: `{:?}` != `{:?}`",
            __pt_l,
            __pt_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(*__pt_l != *__pt_r, $($fmt)+);
    }};
}
