//! Deterministic case runner: per-test seeded RNG, no shrinking.

/// Runner configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps the no-shrink shim's suite
        // fast while still exploring a meaningful input sample.
        ProptestConfig { cases: 64 }
    }
}

/// A non-passing test case: a genuine failure (`prop_assert*`) or a
/// rejected input (`prop_assume!`), which the runner skips silently.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    pub message: String,
    pub is_rejection: bool,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
            is_rejection: false,
        }
    }

    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
            is_rejection: true,
        }
    }
}

/// SplitMix64-based generator; quality is ample for test-input sampling and
/// the zero-dependency implementation keeps the shim self-contained.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero and is allowed
    /// up to `u64::MAX + 1` (the full span of an inclusive u64 range).
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        if bound > u64::MAX as u128 {
            return self.next_u64() as u128;
        }
        (self.next_u64() as u128 * bound) >> 64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name: a stable, platform-independent seed so every
/// run of a given test explores the same inputs.
fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` for `config.cases` deterministic inputs, panicking (so the
/// `#[test]` harness reports failure) on the first case that errors.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = seed_of(name);
    for i in 0..config.cases {
        let mut rng = TestRng::new(base ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        if let Err(e) = case(&mut rng) {
            if e.is_rejection {
                continue;
            }
            panic!(
                "proptest '{name}' failed at case {i}/{cases}: {msg}\n\
                 (deterministic shim: re-running reproduces this case; no shrinking)",
                cases = config.cases,
                msg = e.message,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic() {
        let mut seen_a = Vec::new();
        run_cases(ProptestConfig::with_cases(16), "det", |rng| {
            seen_a.push(rng.next_u64());
            Ok(())
        });
        let mut seen_b = Vec::new();
        run_cases(ProptestConfig::with_cases(16), "det", |rng| {
            seen_b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(seen_a, seen_b);
        assert_eq!(seen_a.len(), 16);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_panics_on_failure() {
        run_cases(ProptestConfig::with_cases(4), "boom", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1_000 {
            assert!(rng.below(10) < 10);
        }
    }
}
