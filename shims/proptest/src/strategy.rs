//! Value-generation strategies: ranges, tuples, `prop_map`, and vectors.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// draws a single concrete value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// Element-count specification for [`vec()`]: an exact size or a half-open /
/// inclusive range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u128;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::new(0xDEAD_BEEF);
        let s = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        for _ in 0..200 {
            let f = (-5.0..5.0f64).generate(&mut rng);
            assert!((-5.0..5.0).contains(&f));
        }
    }

    #[test]
    fn tuples_and_vecs_compose() {
        let mut rng = TestRng::new(7);
        let s = vec((0u32..4, -1.0..1.0f64), 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 4);
                assert!((-1.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = TestRng::new(3);
        let s = vec(0..100i32, 7usize);
        assert_eq!(s.generate(&mut rng).len(), 7);
    }

    #[test]
    fn just_clones_value() {
        let mut rng = TestRng::new(1);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
