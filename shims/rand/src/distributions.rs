//! Distributions subset: `Standard`, `Distribution`, `WeightedIndex`.

use crate::{unit_f32, unit_f64, RngCore};
use std::borrow::Borrow;
use std::fmt;

/// Types that can produce values of `T` from a random source.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: uniform over the unit interval for
/// floats, uniform over the whole domain for integers and bool.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Error from [`WeightedIndex::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightedError {
    NoItem,
    InvalidWeight,
    AllWeightsZero,
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "a weight is negative or non-finite"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices proportionally to a fixed weight list.
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let x = unit_f64(rng) * self.total;
        // First cumulative weight strictly above x; zero-weight items are
        // never selected because their cumulative equals the predecessor's.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite cumulative weights"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let wi = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
        let mut rng = Counter(11);
        let mut counts = [0usize; 3];
        for _ in 0..4_000 {
            counts[rng.sample(&wi)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item drawn");
        assert!(counts[2] > counts[0] * 2, "counts: {counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert_eq!(
            WeightedIndex::new(std::iter::empty::<f64>()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([1.0, -1.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        assert_eq!(
            WeightedIndex::new([f64::NAN]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }

    #[test]
    fn weighted_index_accepts_borrowed_slices() {
        let v = vec![2.0, 5.0];
        let wi = WeightedIndex::new(&v).unwrap();
        let mut rng = Counter(1);
        for _ in 0..100 {
            assert!(rng.sample(&wi) < 2);
        }
    }
}
