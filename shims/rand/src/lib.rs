//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace carries a minimal, API-compatible subset of `rand` 0.8 in
//! tree. Only the surface this workspace actually uses is implemented:
//! `RngCore`, `SeedableRng` (with `seed_from_u64`), the `Rng` extension
//! trait (`gen`, `gen_range`, `gen_bool`, `sample`), and
//! `distributions::{Distribution, Standard, WeightedIndex}`.
//!
//! Determinism matters more than statistical quality here: every consumer
//! seeds explicitly (`seed_from_u64`), and the test suite asserts exact
//! reproducibility across runs. `seed_from_u64` uses the same SplitMix64
//! expansion as `rand_core`, so seeds produce well-mixed key material.

pub mod distributions;

/// Core random-number source: the object-safe part of the API.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 scheme `rand_core`
    /// 0.6 uses, so `seed_from_u64(n)` yields byte-identical seeds (and
    /// therefore identical streams) to the real crates.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let bytes = xorshifted.rotate_right(rot).to_le_bytes();
            for (b, &s) in chunk.iter_mut().zip(bytes.iter()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]: {p}");
        self.gen::<f64>() < p
    }

    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample a single value from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a range. The blanket [`SampleRange`]
/// impls below are keyed on this trait so that the range's element type and
/// `gen_range`'s return type unify during inference (as in real rand).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; `lo < hi` already checked.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `lo <= hi` already checked.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of a `u64`.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform `u64` in `[0, bound)` via 128-bit widening multiply (Lemire).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // One widening multiply gives a negligible bias (< 2^-64 per draw) —
    // more than good enough for synthetic data generation.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_uniform_impls {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                (lo as $wide).wrapping_add(bounded_u64(rng, span) as $wide) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(bounded_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_uniform_impls!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

macro_rules! float_uniform_impls {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + $unit(rng) as $t * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + $unit(rng) as $t * (hi - lo)
            }
        }
    )*};
}

float_uniform_impls!(f32 => unit_f32, f64 => unit_f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(0..=2usize);
            assert!(i <= 2);
            let n = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&n));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
